//! The deterministic discrete-event engine.
//!
//! Simulates the cluster array at the functional-unit level: the SCP
//! broadcasts each instruction over the global bus; PUs decode and
//! enqueue tasks; MUs execute marker work (each cluster has its
//! configured number of MU servers); CUs serialize outgoing messages
//! onto the hypercube, which delivers them after the per-hop wire and
//! relay latencies; and the controller closes each propagation group
//! with a tiered barrier synchronization. Simulated time is nanoseconds;
//! processing is totally ordered by `(time, sequence)` so results and
//! timings are exactly reproducible.
//!
//! # Fault injection
//!
//! With a [`snap_fault::FaultPlan`] attached, injection decisions key off
//! the simulator's event sequence number, so a seeded plan perturbs the
//! *timing* of a run absolutely deterministically while the modelled
//! reliable link layer (detect + retransmit, one extra CU service and
//! wire traversal per lost or corrupted copy) keeps the logical results
//! identical. Worker panics are a threaded-engine concept and are not
//! modelled here; the SIMD lockstep ablation path is likewise
//! uninjected.

use crate::config::MachineConfig;
use crate::controller::{plan, PropSpec, Step};
use crate::cost::CostModel;
use crate::engine::common::{exec_single, exec_single_shared, phase_of, SingleOutcome};
use crate::engine::sched::{apply_arrival, visited_map_for, EventQueue, Picker, CONTROL_STREAM};
use crate::error::CoreError;
use crate::propagate::{expand, Expansion, PropTask, VisitedMap};
use crate::region::{Region, RegionMap};
use crate::report::RunReport;
use snap_isa::{InstrClass, Program};
use snap_kb::{ClusterId, SemanticNetwork};
use snap_mem::SimTime;
use snap_net::{BusModel, HypercubeTopology, PerfCollector};
use snap_obs::{FaultKind, PhaseKind, Stamp, Tracer, CONTROLLER_TRACK};
use snap_sync::TieredSyncModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Executes `program` on the simulated array.
pub(crate) fn run(
    config: &MachineConfig,
    cost: &CostModel,
    network: &mut SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    config.validate();
    network.flush_links();
    let mut machine = Des::new(config, cost, network);
    for step in plan(program) {
        match step {
            Step::Instr(idx) => machine.exec_instr(network, &program.instructions()[idx])?,
            Step::Group(indices) => {
                let specs: Vec<PropSpec> = indices
                    .iter()
                    .enumerate()
                    .map(|(g, &idx)| PropSpec::compile(g, &program.instructions()[idx]))
                    .collect();
                machine.exec_group(network, &specs)?;
            }
        }
    }
    Ok(machine.finish())
}

/// Shared-snapshot variant of [`run`]: identical simulation and
/// accounting over an immutably borrowed network. The facade has already
/// rejected maintenance instructions and staged links, so instructions
/// go through [`exec_single_shared`] and no flush is needed.
pub(crate) fn run_shared(
    config: &MachineConfig,
    cost: &CostModel,
    network: &SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    config.validate();
    let mut machine = Des::new(config, cost, network);
    for step in plan(program) {
        match step {
            Step::Instr(idx) => machine.exec_instr_shared(network, &program.instructions()[idx])?,
            Step::Group(indices) => {
                let specs: Vec<PropSpec> = indices
                    .iter()
                    .enumerate()
                    .map(|(g, &idx)| PropSpec::compile(g, &program.instructions()[idx]))
                    .collect();
                machine.exec_group(network, &specs)?;
            }
        }
    }
    Ok(machine.finish())
}

/// One scheduled event of the propagation phase. Ordering lives in the
/// shared [`EventQueue`]: `(time, tie, insertion seq)`, where the tie is
/// zero under FIFO — restoring the historical `(time, seq)` total order
/// — and a seeded draw under a fuzzed schedule, permuting exactly the
/// equal-time orderings concurrent hardware leaves unspecified.
#[derive(Debug, Clone)]
enum EventKind {
    /// An MU finishes expanding a task; its arrivals take effect.
    Completion {
        cluster: usize,
        task: PropTask,
        expansion: Expansion,
    },
    /// A marker message arrives at its destination cluster.
    Delivery { cluster: usize, task: PropTask },
}

struct Des<'c> {
    config: &'c MachineConfig,
    cost: &'c CostModel,
    map: Arc<RegionMap>,
    regions: Vec<Region>,
    topology: HypercubeTopology,
    bus: BusModel,
    mu_free: Vec<Vec<SimTime>>,
    cu_free: Vec<SimTime>,
    /// In-flight delivery times per sending cluster: the occupancy of
    /// the CU's outgoing marker-activation buffer.
    outbox: Vec<BinaryHeap<Reverse<SimTime>>>,
    sync: TieredSyncModel,
    perf: Option<PerfCollector>,
    injector: Option<snap_fault::FaultInjector>,
    tracer: Tracer,
    /// Schedule decision stream (event tie-breaks). Distinct from `seq`,
    /// which keys fault-injection draws and must stay untouched so a
    /// seeded fault plan reproduces bit-identically under any schedule.
    picker: Picker,
    now: SimTime,
    seq: u64,
    pending_msgs: u64,
    report: RunReport,
    /// Visited map reused across propagation groups (reset per group):
    /// steady state re-visits capacity instead of reallocating per phase.
    visited: VisitedMap,
}

impl<'c> Des<'c> {
    fn new(config: &'c MachineConfig, cost: &'c CostModel, network: &SemanticNetwork) -> Self {
        let map = RegionMap::build(network, config.clusters, config.partition);
        let report = RunReport {
            partition: Some(map.partition().stats(network)),
            ..RunReport::default()
        };
        let regions = (0..config.clusters)
            .map(|c| Region::new(ClusterId(c as u8), Arc::clone(&map), network))
            .collect();
        Des {
            config,
            cost,
            map,
            regions,
            topology: HypercubeTopology::covering(config.clusters),
            bus: BusModel::new(),
            mu_free: config.mus.iter().map(|&m| vec![0; m]).collect(),
            cu_free: vec![0; config.clusters],
            outbox: (0..config.clusters).map(|_| BinaryHeap::new()).collect(),
            sync: TieredSyncModel::new(config.pe_count()),
            perf: config
                .instrument
                .then(|| PerfCollector::new(config.pe_count(), 1 << 16)),
            injector: config
                .fault_plan
                .clone()
                .map(snap_fault::FaultInjector::new),
            tracer: Tracer::from_config(config.trace.as_ref(), config.clusters),
            picker: Picker::new(config.schedule, CONTROL_STREAM),
            now: 0,
            seq: 0,
            pending_msgs: 0,
            report,
            visited: visited_map_for(config, network.node_count()),
        }
    }

    fn finish(mut self) -> RunReport {
        self.report.total_ns = self.now;
        self.report.schedule_digest = self.picker.digest();
        if let Some(inj) = &self.injector {
            self.report.faults = inj.report();
        }
        self.report.trace = self.tracer.report();
        self.report
    }

    /// Reports an event on the performance-collection network. The PE
    /// resumes immediately; only the serial-link shift and FIFO are
    /// modelled.
    fn record_perf(&mut self, code: u8) {
        if let Some(pc) = &mut self.perf {
            match pc.record(0, self.now, code, self.report.barriers as u32) {
                Some(_) => self.report.perf_events += 1,
                None => self.report.perf_dropped += 1,
            }
        }
    }

    /// Executes one non-propagate instruction with barrier-stable
    /// markers.
    fn exec_instr(
        &mut self,
        network: &mut SemanticNetwork,
        instr: &snap_isa::Instruction,
    ) -> Result<(), CoreError> {
        let start = self.now;
        let class = instr.class();
        self.tracer.phase_start(phase_of(class), Stamp::Sim(start));
        let out = exec_single(instr, network, &mut self.regions)?;
        self.account_instr(class, out, start);
        Ok(())
    }

    /// [`Des::exec_instr`] over an immutably borrowed network: the same
    /// cost accounting applied to an [`exec_single_shared`] outcome.
    fn exec_instr_shared(
        &mut self,
        network: &SemanticNetwork,
        instr: &snap_isa::Instruction,
    ) -> Result<(), CoreError> {
        let start = self.now;
        let class = instr.class();
        self.tracer.phase_start(phase_of(class), Stamp::Sim(start));
        let out = exec_single_shared(instr, network, &mut self.regions)?;
        self.account_instr(class, out, start);
        Ok(())
    }

    /// Converts one instruction's work counts into simulated time and
    /// report entries (shared by the exclusive and shared exec paths so
    /// they account identically).
    fn account_instr(&mut self, class: InstrClass, out: SingleOutcome, start: SimTime) {
        let items: usize = out.work.iter().map(|w| w.items).sum();
        match class {
            InstrClass::Maintenance => {
                // Controller housekeeping; no broadcast to the array.
                self.now += self.cost.pcp_ns
                    + self.cost.maintenance_ns * out.maintenance_ops.max(1) as SimTime;
            }
            InstrClass::Collect => {
                let bcast = self.cost.broadcast_ns;
                self.bus.broadcast(self.now, 2, bcast / 2);
                self.report.overhead.broadcast_ns += bcast;
                let ns = self.cost.collect_ns(self.config.clusters, items);
                self.report.overhead.collect_ns += ns;
                self.now += self.cost.pcp_ns + bcast + ns;
            }
            InstrClass::Barrier => {
                self.barrier();
            }
            InstrClass::Search | InstrClass::Boolean | InstrClass::SetClear => {
                let bcast = self.cost.broadcast_ns;
                self.bus.broadcast(self.now, 2, bcast / 2);
                self.report.overhead.broadcast_ns += bcast;
                let t0 = self.now + bcast;
                // Each cluster executes its local part on one MU.
                let done = out
                    .work
                    .iter()
                    .map(|w| {
                        let work_ns = match class {
                            InstrClass::Search => {
                                w.scans as SimTime * self.cost.link_scan_ns
                                    + w.value_ops as SimTime * self.cost.value_op_ns
                            }
                            _ => {
                                w.words as SimTime * self.cost.word_op_ns
                                    + w.value_ops as SimTime * self.cost.value_op_ns
                            }
                        };
                        t0 + self.cost.pu_decode_ns + work_ns
                    })
                    .max()
                    .unwrap_or(t0);
                self.now = done + self.cost.pcp_ns;
            }
            InstrClass::Propagate => unreachable!("plan puts propagates in groups"),
        }
        if let Some(c) = out.collect {
            self.report.collects.push(c);
        }
        self.report.record(class, self.now - start);
        self.record_perf(class as u8);
        self.tracer.phase_end(Stamp::Sim(self.now));
    }

    /// Executes an overlapped group of propagations, then barriers.
    fn exec_group(
        &mut self,
        network: &SemanticNetwork,
        specs: &[PropSpec],
    ) -> Result<(), CoreError> {
        let start = self.now;
        self.tracer
            .phase_start(PhaseKind::Propagate, Stamp::Sim(start));
        // Broadcast each PROPAGATE of the group over the bus.
        for _ in specs {
            self.bus.broadcast(self.now, 2, self.cost.broadcast_ns / 2);
            self.report.overhead.broadcast_ns += self.cost.broadcast_ns;
            self.now += self.cost.broadcast_ns;
        }
        let t0 = self.now + self.cost.pu_decode_ns;
        // Reset MU/CU timelines to the phase start (they were drained by
        // the previous barrier).
        for mus in &mut self.mu_free {
            mus.iter_mut().for_each(|t| *t = t0);
        }
        self.cu_free.iter_mut().for_each(|t| *t = t0);

        let phase_end = if self.config.lockstep_waves {
            self.run_group_lockstep(network, specs, t0)?
        } else {
            self.run_group_events(network, specs, t0)?
        };

        let phase_ns = phase_end.saturating_sub(start);
        let share = phase_ns / specs.len() as SimTime;
        for _ in specs {
            self.report.record(InstrClass::Propagate, share);
        }
        self.now = phase_end;
        self.tracer.phase_end(Stamp::Sim(self.now));
        self.tracer
            .phase_start(PhaseKind::Barrier, Stamp::Sim(self.now));
        self.barrier();
        self.tracer.phase_end(Stamp::Sim(self.now));
        Ok(())
    }

    /// MIMD propagation: the normal SNAP-1 mode.
    fn run_group_events(
        &mut self,
        network: &SemanticNetwork,
        specs: &[PropSpec],
        t0: SimTime,
    ) -> Result<SimTime, CoreError> {
        let mut heap: EventQueue<EventKind> = EventQueue::new();
        // Take the pooled visited map for the group (`deliver_local`
        // borrows it alongside `self`), reset in place, restore after.
        let mut visited = std::mem::take(&mut self.visited);
        visited.reset();
        let mut phase_end = t0;

        // Seed: every cluster scans its marker status table for sources.
        for spec in specs {
            let mut alpha = 0u64;
            for c in 0..self.regions.len() {
                let sources = self.regions[c].active_nodes(spec.source);
                alpha += sources.len() as u64;
                for node in sources {
                    let value = self.regions[c].source_value(spec.source, node);
                    if visited.should_expand(spec.prop, 0, node, value, node) {
                        let task = PropTask {
                            prop: spec.prop,
                            node,
                            state: 0,
                            value,
                            origin: node,
                            level: 0,
                        };
                        self.schedule_task(network, specs, &mut heap, c, task, t0);
                    }
                }
            }
            self.report.alpha_per_propagate.push(alpha);
        }

        while let Some((ev_time, kind)) = heap.pop() {
            phase_end = phase_end.max(ev_time);
            match kind {
                EventKind::Completion {
                    cluster,
                    task,
                    expansion,
                } => {
                    self.report.expansions += 1;
                    self.tracer.expansion(cluster as u16);
                    if task.level >= self.config.max_hops {
                        self.sync.consumed(task.level.min(63));
                        continue;
                    }
                    for arrival in &expansion.arrivals {
                        let level = task.level + 1;
                        self.report.max_propagation_depth =
                            self.report.max_propagation_depth.max(level);
                        let next = PropTask {
                            prop: task.prop,
                            node: arrival.node,
                            state: arrival.state,
                            value: arrival.value,
                            origin: task.origin,
                            level,
                        };
                        let dest = self.map.cluster_of(arrival.node).index();
                        if dest == cluster {
                            self.deliver_local(
                                network,
                                specs,
                                &mut heap,
                                &mut visited,
                                dest,
                                next,
                                ev_time,
                            )?;
                        } else {
                            // Off-cluster: CU serializes, hypercube carries.
                            self.pending_msgs += 1;
                            self.report.traffic.total_messages += 1;
                            let hops = self
                                .topology
                                .distance(ClusterId(cluster as u8), ClusterId(dest as u8));
                            self.report.traffic.total_hops += hops as u64;
                            // The outbox absorbs the burst; when full,
                            // the sender blocks until a delivery frees a
                            // slot (§II-C).
                            let capacity = self.config.cu_outbox_capacity;
                            let mut ready = ev_time;
                            let mut blocked = false;
                            {
                                let ob = &mut self.outbox[cluster];
                                while ob.peek().is_some_and(|Reverse(t)| *t <= ev_time) {
                                    ob.pop();
                                }
                                if ob.len() >= capacity {
                                    let Reverse(freed) = ob.pop().expect("full outbox is nonempty");
                                    ready = ready.max(freed);
                                    blocked = true;
                                }
                            }
                            if blocked {
                                self.report.traffic.blocked_sends += 1;
                            }
                            let mut cu_start = ready.max(self.cu_free[cluster]);
                            if let Some(inj) = &self.injector {
                                // Arbiter starvation delays the CU grant.
                                let starve = inj.starvation_ns(cluster as u8, self.seq);
                                if starve > 0 {
                                    self.tracer.fault(
                                        cluster as u16,
                                        FaultKind::Starvation,
                                        Stamp::Sim(cu_start),
                                    );
                                }
                                cu_start += starve;
                            }
                            // CU grant decision: an idle CU grants at
                            // once; a busy (or starved) one defers.
                            self.tracer.arbiter(
                                cluster as u16,
                                cu_start - ready,
                                Stamp::Sim(cu_start),
                            );
                            let cu_done = cu_start + self.cost.cu_service_ns;
                            self.cu_free[cluster] = cu_done;
                            let wire = hops as SimTime * self.cost.hop_ns
                                + hops.saturating_sub(1) as SimTime * self.cost.cu_service_ns;
                            let mut deliver = cu_done + wire;
                            let mut duplicated = false;
                            self.tracer.msg_send(
                                cluster as u16,
                                dest as u16,
                                hops.min(u8::MAX as usize) as u8,
                                Stamp::Sim(ev_time),
                            );
                            if let Some(inj) = &self.injector {
                                let fate = inj.fate(cluster as u8, dest as u8, self.seq);
                                if fate.corrupted {
                                    inj.note_detected_corruption();
                                    self.tracer.fault(
                                        cluster as u16,
                                        FaultKind::Corruption,
                                        Stamp::Sim(deliver),
                                    );
                                } else if fate.dropped {
                                    self.tracer.fault(
                                        cluster as u16,
                                        FaultKind::Drop,
                                        Stamp::Sim(deliver),
                                    );
                                }
                                if fate.dropped || fate.corrupted {
                                    // Modelled reliable link layer: the
                                    // first copy is lost (or discarded on
                                    // checksum mismatch) and the
                                    // retransmission pays one more CU
                                    // service plus wire traversal.
                                    inj.note_retry();
                                    self.tracer.msg_retry(
                                        cluster as u16,
                                        dest as u16,
                                        Stamp::Sim(deliver),
                                    );
                                    deliver += self.cost.cu_service_ns + wire;
                                }
                                if fate.delay_ns > 0 {
                                    self.tracer.fault(
                                        cluster as u16,
                                        FaultKind::Delay,
                                        Stamp::Sim(deliver),
                                    );
                                }
                                deliver += fate.delay_ns;
                                duplicated = fate.duplicated;
                            }
                            self.outbox[cluster].push(Reverse(deliver));
                            if self.tracer.is_enabled() {
                                self.tracer.queue_depth(
                                    cluster as u16,
                                    self.outbox[cluster].len() as u64,
                                    Stamp::Sim(ev_time),
                                );
                            }
                            self.tracer
                                .msg_recv(cluster as u16, dest as u16, Stamp::Sim(deliver));
                            self.report.overhead.communication_ns += deliver - ev_time;
                            self.sync.created(level.min(63));
                            self.seq += 1;
                            heap.push(
                                deliver,
                                EventKind::Delivery {
                                    cluster: dest,
                                    task: next,
                                },
                                &mut self.picker,
                            );
                            if duplicated {
                                // The duplicate copy also arrives; the
                                // receiver's idempotent merge absorbs it.
                                if let Some(inj) = &self.injector {
                                    inj.note_detected_duplicate();
                                }
                                self.tracer.fault(
                                    cluster as u16,
                                    FaultKind::Duplicate,
                                    Stamp::Sim(deliver),
                                );
                                self.sync.created(level.min(63));
                                self.seq += 1;
                                heap.push(
                                    deliver + self.cost.cu_service_ns,
                                    EventKind::Delivery {
                                        cluster: dest,
                                        task: next,
                                    },
                                    &mut self.picker,
                                );
                            }
                        }
                    }
                    self.sync.consumed(task.level.min(63));
                }
                EventKind::Delivery { cluster, task } => {
                    let level = task.level;
                    self.deliver_local(
                        network,
                        specs,
                        &mut heap,
                        &mut visited,
                        cluster,
                        task,
                        ev_time,
                    )?;
                    self.sync.consumed(level.min(63));
                }
            }
        }
        debug_assert_eq!(self.sync.in_flight(), 0, "tiered counters drained");
        self.visited = visited;
        Ok(phase_end)
    }

    /// Applies an arrival at its home cluster and schedules the follow-on
    /// expansion if warranted.
    #[allow(clippy::too_many_arguments)]
    fn deliver_local(
        &mut self,
        network: &SemanticNetwork,
        specs: &[PropSpec],
        heap: &mut EventQueue<EventKind>,
        visited: &mut VisitedMap,
        cluster: usize,
        task: PropTask,
        now: SimTime,
    ) -> Result<(), CoreError> {
        let spec = &specs[task.prop];
        let expand = apply_arrival(
            &mut self.regions[cluster],
            visited,
            spec.target,
            task.prop,
            task.state,
            task.node,
            task.value,
            task.origin,
        )?;
        self.report.traffic.local_activations += 1;
        self.tracer.activation(cluster as u16);
        if expand {
            self.schedule_task(network, specs, heap, cluster, task, now);
        }
        Ok(())
    }

    /// Assigns a task to the earliest-free MU of `cluster` and schedules
    /// its completion.
    fn schedule_task(
        &mut self,
        network: &SemanticNetwork,
        specs: &[PropSpec],
        heap: &mut EventQueue<EventKind>,
        cluster: usize,
        task: PropTask,
        ready: SimTime,
    ) {
        let spec = &specs[task.prop];
        let expansion = expand(network, &spec.rule, spec.func, &task);
        let local_sets = expansion
            .arrivals
            .iter()
            .filter(|a| self.map.cluster_of(a.node).index() == cluster)
            .count();
        let mut dur = self
            .cost
            .expand_ns(expansion.segments, expansion.links_scanned, local_sets)
            .max(1);
        if let Some(inj) = &self.injector {
            // An injected PE stall lengthens this expansion's service.
            let stall = inj.stall_ns(cluster as u8, self.seq);
            if stall > 0 {
                self.tracer
                    .fault(cluster as u16, FaultKind::Stall, Stamp::Sim(ready));
            }
            dur += stall;
        }
        let mu = (0..self.mu_free[cluster].len())
            .min_by_key(|&i| self.mu_free[cluster][i])
            .expect("cluster has at least one MU");
        let start = ready.max(self.mu_free[cluster][mu]);
        let done = start + dur;
        self.mu_free[cluster][mu] = done;
        self.sync.created(task.level.min(63));
        self.seq += 1;
        heap.push(
            done,
            EventKind::Completion {
                cluster,
                task,
                expansion,
            },
            &mut self.picker,
        );
    }

    /// SIMD-only ablation: a global barrier plus controller round-trip
    /// after every propagation wave, the way the CM-2 had to iterate
    /// between controller and array on the critical path.
    fn run_group_lockstep(
        &mut self,
        network: &SemanticNetwork,
        specs: &[PropSpec],
        t0: SimTime,
    ) -> Result<SimTime, CoreError> {
        let mut visited = std::mem::take(&mut self.visited);
        visited.reset();
        // (cluster, task) pairs of the current wave.
        let mut wave: Vec<(usize, PropTask)> = Vec::new();
        for spec in specs {
            let mut alpha = 0u64;
            for c in 0..self.regions.len() {
                for node in self.regions[c].active_nodes(spec.source) {
                    alpha += 1;
                    let value = self.regions[c].source_value(spec.source, node);
                    if visited.should_expand(spec.prop, 0, node, value, node) {
                        wave.push((
                            c,
                            PropTask {
                                prop: spec.prop,
                                node,
                                state: 0,
                                value,
                                origin: node,
                                level: 0,
                            },
                        ));
                    }
                }
            }
            self.report.alpha_per_propagate.push(alpha);
        }

        let mut wave_start = t0;
        while !wave.is_empty() {
            let mut mu_free: Vec<Vec<SimTime>> = self
                .config
                .mus
                .iter()
                .map(|&m| vec![wave_start; m])
                .collect();
            let mut wave_end = wave_start;
            let mut next_wave = Vec::new();
            for (cluster, task) in wave.drain(..) {
                let spec = &specs[task.prop];
                let expansion = expand(network, &spec.rule, spec.func, &task);
                self.report.expansions += 1;
                self.tracer.expansion(cluster as u16);
                let dur = self
                    .cost
                    .expand_ns(
                        expansion.segments,
                        expansion.links_scanned,
                        expansion.arrivals.len(),
                    )
                    .max(1);
                let mu = (0..mu_free[cluster].len())
                    .min_by_key(|&i| mu_free[cluster][i])
                    .expect("cluster has at least one MU");
                let done = mu_free[cluster][mu] + dur;
                mu_free[cluster][mu] = done;
                wave_end = wave_end.max(done);
                if task.level >= self.config.max_hops {
                    continue;
                }
                for arrival in &expansion.arrivals {
                    let level = task.level + 1;
                    self.report.max_propagation_depth =
                        self.report.max_propagation_depth.max(level);
                    let dest = self.map.cluster_of(arrival.node).index();
                    if dest != cluster {
                        self.pending_msgs += 1;
                        self.report.traffic.total_messages += 1;
                        let hops = self
                            .topology
                            .distance(ClusterId(cluster as u8), ClusterId(dest as u8));
                        self.report.traffic.total_hops += hops as u64;
                        let wire = self.cost.cu_service_ns
                            + hops as SimTime * self.cost.hop_ns
                            + hops.saturating_sub(1) as SimTime * self.cost.cu_service_ns;
                        wave_end = wave_end.max(done + wire);
                        self.report.overhead.communication_ns += wire;
                    }
                    let next = PropTask {
                        prop: task.prop,
                        node: arrival.node,
                        state: arrival.state,
                        value: arrival.value,
                        origin: task.origin,
                        level,
                    };
                    self.regions[dest].arrive(spec.target, next.node, next.value, next.origin)?;
                    self.report.traffic.local_activations += u64::from(dest == cluster);
                    self.tracer.activation(dest as u16);
                    if visited.should_expand(
                        next.prop,
                        next.state,
                        next.node,
                        next.value,
                        next.origin,
                    ) {
                        next_wave.push((dest, next));
                    }
                }
            }
            // Controller round-trip: global barrier + re-broadcast before
            // the next wave may start.
            let sync = self.cost.barrier_ns(self.config.pe_count());
            let rebroadcast = self.cost.broadcast_ns + self.cost.pcp_ns;
            self.report.overhead.sync_ns += sync;
            self.report.overhead.broadcast_ns += self.cost.broadcast_ns;
            self.report.barriers += 1;
            wave_start = wave_end + sync + rebroadcast;
            wave = next_wave;
        }
        self.visited = visited;
        Ok(wave_start)
    }

    /// The tiered barrier closing a propagation group.
    fn barrier(&mut self) {
        let ns = self.cost.barrier_ns(self.config.pe_count());
        self.now += ns;
        self.tracer
            .barrier_wait(CONTROLLER_TRACK, ns, Stamp::Sim(self.now));
        self.report.overhead.sync_ns += ns;
        self.report.barriers += 1;
        self.report
            .traffic
            .messages_per_sync
            .push(self.pending_msgs);
        self.pending_msgs = 0;
        self.record_perf(0xFF);
        debug_assert!(self.sync.is_complete(), "barrier with in-flight markers");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sequential;
    use snap_isa::{CombineFunc, PropRule, StepFunc};
    use snap_kb::{Color, Marker, NetworkConfig, NodeId, RelationType};

    fn chain_network(n: usize) -> SemanticNetwork {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let mut prev = None;
        for i in 0..n {
            let id = net.add_node(Color((i % 4) as u8)).unwrap();
            if let Some(p) = prev {
                net.add_link(p, RelationType(1), 1.0, id).unwrap();
            }
            prev = Some(id);
        }
        net
    }

    fn parse_like_program() -> Program {
        Program::builder()
            .search_color(Color(0), Marker::binary(1), 0.0)
            .search_color(Color(1), Marker::binary(2), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(3),
                PropRule::Star(RelationType(1)),
                StepFunc::AddWeight,
            )
            .propagate(
                Marker::binary(2),
                Marker::complex(4),
                PropRule::Star(RelationType(1)),
                StepFunc::AddWeight,
            )
            .and_marker(
                Marker::complex(3),
                Marker::complex(4),
                Marker::complex(5),
                CombineFunc::Min,
            )
            .collect_marker(Marker::complex(5))
            .build()
    }

    #[test]
    fn des_matches_sequential_results() {
        let program = parse_like_program();
        let mut net1 = chain_network(64);
        let mut net2 = chain_network(64);
        let seq = sequential::run(
            &MachineConfig::snap1_eval(),
            &CostModel::snap1(),
            &mut net1,
            &program,
        )
        .unwrap();
        let des = run(
            &MachineConfig::snap1_eval(),
            &CostModel::snap1(),
            &mut net2,
            &program,
        )
        .unwrap();
        assert_eq!(seq.collects, des.collects);
    }

    #[test]
    fn more_clusters_reduce_propagation_time() {
        // A wide star: many independent sources propagate one hop.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let hub_color = Color(2);
        for _ in 0..256 {
            let src = net.add_node(Color(0)).unwrap();
            let dst = net.add_node(hub_color).unwrap();
            net.add_link(src, RelationType(1), 1.0, dst).unwrap();
        }
        let program = Program::builder()
            .search_color(Color(0), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Once(RelationType(1)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        let cost = CostModel::snap1();
        let t1 = {
            let mut net = net.clone();
            run(&MachineConfig::uniform(1, 1), &cost, &mut net, &program)
                .unwrap()
                .time_of(InstrClass::Propagate)
        };
        let t16 = {
            let mut net = net.clone();
            run(&MachineConfig::uniform(16, 3), &cost, &mut net, &program)
                .unwrap()
                .time_of(InstrClass::Propagate)
        };
        assert!(
            t16 * 4 < t1,
            "16×3MU clusters should be ≫ faster: t1={t1} t16={t16}"
        );
    }

    #[test]
    fn messages_counted_per_sync_point() {
        let mut net = chain_network(32);
        let program = Program::builder()
            .search_node(NodeId(0), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Star(RelationType(1)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        // Round-robin over 4 clusters: every chain hop crosses clusters.
        let mut cfg = MachineConfig::uniform(4, 1);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let report = run(&cfg, &CostModel::snap1(), &mut net, &program).unwrap();
        assert_eq!(
            report.traffic.messages_per_sync.len() as u64,
            report.barriers
        );
        assert_eq!(report.traffic.total_messages, 31);
        assert!(report.overhead.communication_ns > 0);
        assert!(report.overhead.sync_ns > 0);
        // Collect returns all 31 reached nodes.
        assert_eq!(report.collects[0].len(), 31);
    }

    #[test]
    fn lockstep_ablation_is_slower_and_equal_results() {
        let mut cfg = MachineConfig::uniform(4, 2);
        let cost = CostModel::snap1();
        let program = parse_like_program();
        let mut net1 = chain_network(64);
        let normal = run(&cfg, &cost, &mut net1, &program).unwrap();
        cfg.lockstep_waves = true;
        let mut net2 = chain_network(64);
        let lockstep = run(&cfg, &cost, &mut net2, &program).unwrap();
        assert_eq!(normal.collects, lockstep.collects);
        assert!(
            lockstep.total_ns > normal.total_ns,
            "per-wave round-trips must cost time: {} vs {}",
            lockstep.total_ns,
            normal.total_ns
        );
    }

    #[test]
    fn tiny_outbox_blocks_senders_and_slows_the_run() {
        // A single source bursting at many off-cluster destinations.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let hub = net.add_node(Color(1)).unwrap();
        for _ in 0..120 {
            let leaf = net.add_node(Color(0)).unwrap();
            net.add_link(hub, RelationType(1), 1.0, leaf).unwrap();
        }
        let program = Program::builder()
            .search_color(Color(1), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Once(RelationType(1)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        let mut cfg = MachineConfig::uniform(4, 1);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let roomy = {
            let mut net = net.clone();
            run(&cfg, &CostModel::snap1(), &mut net, &program).unwrap()
        };
        assert_eq!(
            roomy.traffic.blocked_sends, 0,
            "1024 slots absorb the burst"
        );
        cfg.cu_outbox_capacity = 4;
        let cramped = {
            let mut net = net.clone();
            run(&cfg, &CostModel::snap1(), &mut net, &program).unwrap()
        };
        assert!(cramped.traffic.blocked_sends > 0, "4 slots overflow");
        assert_eq!(roomy.collects, cramped.collects, "results unchanged");
        assert!(
            cramped.total_ns >= roomy.total_ns,
            "blocking cannot make the run faster"
        );
    }

    #[test]
    fn instrumentation_records_events_without_perturbing_results() {
        let mut cfg = MachineConfig::uniform(4, 2);
        let program = parse_like_program();
        let mut n1 = chain_network(64);
        let plain = run(&cfg, &CostModel::snap1(), &mut n1, &program).unwrap();
        cfg.instrument = true;
        let mut n2 = chain_network(64);
        let instrumented = run(&cfg, &CostModel::snap1(), &mut n2, &program).unwrap();
        assert_eq!(plain.collects, instrumented.collects);
        assert_eq!(plain.total_ns, instrumented.total_ns, "separate network");
        assert_eq!(plain.perf_events, 0);
        // One event per non-propagate instruction + one per barrier.
        assert_eq!(
            instrumented.perf_events,
            plain.instruction_count() - plain.count_of(InstrClass::Propagate) + plain.barriers
        );
        assert_eq!(instrumented.perf_dropped, 0);
    }

    #[test]
    fn injected_faults_stretch_time_but_not_results() {
        let program = parse_like_program();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let mut net1 = chain_network(64);
        let clean = run(&cfg, &CostModel::snap1(), &mut net1, &program).unwrap();
        cfg.fault_plan = Some(
            snap_fault::FaultPlan::seeded(9)
                .drops(0.2)
                .duplicates(0.1)
                .delays(0.2, 10_000)
                .corruptions(0.1)
                .stalls(0.2, 5_000),
        );
        let mut net2 = chain_network(64);
        let faulty = run(&cfg, &CostModel::snap1(), &mut net2, &program).unwrap();
        assert_eq!(
            clean.collects, faulty.collects,
            "faults must not change results"
        );
        assert!(faulty.faults.total_injected() > 0);
        assert!(faulty.faults.retries > 0);
        assert!(
            faulty.total_ns > clean.total_ns,
            "retransmits and stalls cost simulated time: {} vs {}",
            faulty.total_ns,
            clean.total_ns
        );
        assert!(clean.faults.is_empty());
    }

    #[test]
    fn faulty_des_runs_are_bit_identical_per_seed() {
        let program = parse_like_program();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        cfg.fault_plan = Some(
            snap_fault::FaultPlan::seeded(77)
                .drops(0.15)
                .delays(0.2, 8_000)
                .corruptions(0.1),
        );
        let mut net1 = chain_network(64);
        let a = run(&cfg, &CostModel::snap1(), &mut net1, &program).unwrap();
        let mut net2 = chain_network(64);
        let b = run(&cfg, &CostModel::snap1(), &mut net2, &program).unwrap();
        assert_eq!(a, b, "same seed must reproduce the whole report");
        cfg.fault_plan = Some(snap_fault::FaultPlan::seeded(78).drops(0.15));
        let mut net3 = chain_network(64);
        let c = run(&cfg, &CostModel::snap1(), &mut net3, &program).unwrap();
        assert_eq!(a.collects, c.collects);
        assert_ne!(
            a.faults, c.faults,
            "a different seed should draw a different schedule"
        );
    }

    #[test]
    fn alpha_recorded_per_propagate() {
        let mut net = chain_network(16);
        let program = parse_like_program();
        let report = run(
            &MachineConfig::snap1_eval(),
            &CostModel::snap1(),
            &mut net,
            &program,
        )
        .unwrap();
        assert_eq!(report.alpha_per_propagate.len(), 2);
        assert_eq!(report.alpha_per_propagate[0], 4); // colors cycle 0..4 over 16 nodes
    }
}
