//! Execution engines sharing one instruction semantics.

pub(crate) mod common;
pub(crate) mod sched;

pub(crate) mod des;
pub(crate) mod sequential;
pub(crate) mod threaded;
