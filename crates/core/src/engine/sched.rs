//! The shared scheduler core: one ordering discipline for three engines.
//!
//! Every engine runs the same phase shape — seed sources, drain a pool
//! of ready work, apply arrivals, close the phase with a gate — but each
//! used to hand-roll the ordering of that pool. This module centralizes
//! the *choice of what fires next* behind a [`ScheduleStrategy`]:
//!
//! * [`ReadyQueue`] orders the ready-task pool of the sequential engine
//!   and of each threaded worker;
//! * [`EventQueue`] orders the discrete-event simulator's event heap,
//!   breaking ties between equal-time events;
//! * [`PhaseGate`] is the phase-closure protocol (the former
//!   `threaded::Gate`), with strategy-aware selection between the
//!   counting fast path and the faithful tiered barrier;
//! * [`Picker`] is the per-stream deterministic decision source behind
//!   all of them.
//!
//! Under [`ScheduleStrategy::Fifo`] (the default) every primitive
//! reproduces the historical orders bit for bit: `ReadyQueue` pops the
//! front, `EventQueue` orders by `(time, seq)`, and the gate selection
//! matches the old injector/tracer rule. Under
//! [`ScheduleStrategy::Fuzzed`] a seeded RNG permutes exactly the
//! decisions that a legal but adversarial machine could make — which
//! ready task runs next, which of two equal-time events fires first,
//! whether a worker drains the fabric or its local queue, which gate
//! protocol closes the phase — while the propagation semantics
//! (min-`(value, origin)` convergence) guarantee the *results* must not
//! change. The interleaving fuzzer in the integration-test crate sweeps
//! seeds through the differential grid and shrinks any divergence to a
//! minimal decision prefix via the strategy's `limit` knob.
//!
//! The [`Component`]/[`ComponentScheduler`] pair is the forward-looking
//! surface of the same idea: a transport-agnostic cooperative scheduler
//! in which components expose `next_tick`/`tick` and the strategy picks
//! among simultaneously-ready components. A future async or
//! multi-process engine implements [`Component`] and inherits the whole
//! fuzzing discipline for free.

use crate::propagate::PropArrival;
use crate::region::Region;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use snap_fault::FaultInjector;
use snap_kb::{Marker, NodeId};
use snap_obs::Tracer;
use snap_sync::{BarrierStall, CountingGate, TieredBarrier};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// How the scheduler core orders ready work.
///
/// Lives on [`crate::MachineConfig::schedule`]; every engine consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScheduleStrategy {
    /// Deterministic first-in-first-out: the historical order of every
    /// engine, preserved bit for bit.
    #[default]
    Fifo,
    /// Seeded adversarial order: a [`Picker`] derived from `seed`
    /// permutes ready-task picks, equal-time event ties, worker
    /// fabric-vs-queue polling, and gate selection. Only the first
    /// `limit` decisions of each stream are fuzzed; later ones fall back
    /// to the FIFO default, which is the shrinking knob the fuzz harness
    /// bisects (`limit = u64::MAX` fuzzes everything).
    Fuzzed {
        /// RNG seed; same seed ⇒ same decision stream per picker stream.
        seed: u64,
        /// Number of leading decisions to fuzz before reverting to FIFO.
        limit: u64,
    },
}

impl ScheduleStrategy {
    /// A fully-fuzzed strategy (no decision limit).
    pub fn fuzzed(seed: u64) -> Self {
        ScheduleStrategy::Fuzzed {
            seed,
            limit: u64::MAX,
        }
    }

    /// True when any decision may deviate from FIFO.
    pub fn is_fuzzed(&self) -> bool {
        matches!(self, ScheduleStrategy::Fuzzed { .. })
    }
}

/// SplitMix64: tiny, seedable, and good enough to decorrelate decision
/// streams (same generator snap-fault uses for injection draws).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic decision stream of the schedule.
///
/// Each concurrent consumer (the sequential engine, the DES event heap,
/// every threaded worker, the controller) owns a picker salted with its
/// own `stream` id, so decisions taken by one never perturb another's —
/// the property that makes a threaded fuzzed run replayable per stream
/// even though real threads race.
#[derive(Debug, Clone)]
pub struct Picker {
    strategy: ScheduleStrategy,
    rng: u64,
    /// Decisions drawn so far (compared against the strategy's limit).
    decisions: u64,
    /// FNV-style fold of every decision, for replay fingerprinting.
    digest: u64,
    /// Whether the most recent pick deviated from the FIFO default.
    reordered: bool,
}

/// Stream id of the controller / single-threaded engines.
pub const CONTROL_STREAM: u64 = 0;

impl Picker {
    /// Creates the picker for decision stream `stream`.
    pub fn new(strategy: ScheduleStrategy, stream: u64) -> Self {
        let seed = match strategy {
            ScheduleStrategy::Fifo => 0,
            ScheduleStrategy::Fuzzed { seed, .. } => seed,
        };
        let mut state = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        // Warm the state so small seeds and streams decorrelate.
        let rng = splitmix64(&mut state) ^ state;
        Picker {
            strategy,
            rng,
            decisions: 0,
            digest: 0,
            reordered: false,
        }
    }

    /// True while fuzzed decisions are still being issued.
    fn fuzzing(&self) -> bool {
        match self.strategy {
            ScheduleStrategy::Fifo => false,
            ScheduleStrategy::Fuzzed { limit, .. } => self.decisions < limit,
        }
    }

    fn draw(&mut self) -> u64 {
        self.decisions += 1;
        let v = splitmix64(&mut self.rng);
        self.digest = (self.digest ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        v
    }

    /// Picks an index in `0..len`. FIFO always answers `0` (the front);
    /// a fuzzed pick is uniform over the pool.
    pub fn pick(&mut self, len: usize) -> usize {
        if len <= 1 || !self.fuzzing() {
            self.reordered = false;
            return 0;
        }
        let idx = (self.draw() % len as u64) as usize;
        self.reordered = idx != 0;
        idx
    }

    /// A boolean decision whose FIFO default is `true`.
    pub fn coin(&mut self) -> bool {
        if !self.fuzzing() {
            return true;
        }
        self.draw() & 1 == 0
    }

    /// Tie-break key for equal-time events: FIFO answers `0` for every
    /// event (preserving arrival order), fuzzed draws a random key.
    pub fn tie_key(&mut self) -> u64 {
        if !self.fuzzing() {
            return 0;
        }
        self.draw()
    }

    /// Whether the most recent [`pick`](Self::pick) deviated from FIFO.
    pub fn last_reordered(&self) -> bool {
        self.reordered
    }

    /// Decisions drawn so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Replay fingerprint: a fold of every decision drawn. Two runs of a
    /// deterministic engine with the same seed must produce the same
    /// digest (asserted by the fuzz harness).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The planted ordering bug (test-only, behind the `fuzz-bug`
    /// feature): reports whether the last ready-pool pick was reordered,
    /// in which case the engine drops that expansion's arrivals —
    /// truncating propagation without disturbing gate accounting, so the
    /// differential grid sees a clean result divergence instead of a
    /// hang. Never fires under FIFO, so the feature is inert for the
    /// normal test suite.
    #[cfg(feature = "fuzz-bug")]
    pub fn bug_armed(&self) -> bool {
        self.reordered
    }

    /// Without the `fuzz-bug` feature the planted bug does not exist.
    #[cfg(not(feature = "fuzz-bug"))]
    #[inline(always)]
    pub fn bug_armed(&self) -> bool {
        false
    }
}

/// Strategy-aware pool of ready tasks.
///
/// FIFO pops the front — exactly the `VecDeque` the engines used before
/// — while fuzzed picks uniformly among everything ready, modelling a
/// marker unit that may legally grab any queued task.
#[derive(Debug)]
pub struct ReadyQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for ReadyQueue<T> {
    fn default() -> Self {
        ReadyQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T> ReadyQueue<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a ready task.
    pub fn push(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Removes and returns the task the strategy fires next.
    pub fn pop(&mut self, picker: &mut Picker) -> Option<T> {
        let idx = picker.pick(self.items.len());
        if idx == 0 {
            self.items.pop_front()
        } else {
            // swap_remove_front keeps this O(1); the pool is unordered
            // under a fuzzed strategy anyway.
            self.items.swap_remove_front(idx)
        }
    }

    /// Tasks currently ready.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is ready.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all queued tasks.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// One entry of the discrete-event queue.
#[derive(Debug)]
struct EventEntry<T> {
    time: u64,
    /// Strategy tie-break between equal-time events (0 under FIFO).
    tie: u64,
    /// Insertion order, the final tie-break (restores the historical
    /// `(time, seq)` total order when `tie` is uniformly zero).
    seq: u64,
    item: T,
}

impl<T> PartialEq for EventEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.tie, self.seq) == (other.time, other.tie, other.seq)
    }
}
impl<T> Eq for EventEntry<T> {}
impl<T> PartialOrd for EventEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EventEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.tie, self.seq).cmp(&(other.time, other.tie, other.seq))
    }
}

/// Strategy-aware discrete-event queue ordered by `(time, tie, seq)`.
///
/// Simulated time is authoritative: fuzzing never reorders events across
/// distinct timestamps — only the *tie-breaks between equal-time events*
/// are permuted, which are exactly the orderings real concurrent
/// hardware leaves unspecified.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<EventEntry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` at `time`; the picker draws its tie-break key.
    pub fn push(&mut self, time: u64, item: T, picker: &mut Picker) {
        let tie = picker.tie_key();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(EventEntry {
            time,
            tie,
            seq,
            item,
        }));
    }

    /// Fires the next event, returning `(time, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.item))
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Applies one propagation arrival at its home region and decides
/// whether it warrants a follow-on expansion.
///
/// This is the single arrival discipline every engine shares: merge the
/// value into the marker table (min-`(value, origin)` cost semantics),
/// then consult the visited map. Returns `Ok(true)` when the arrival
/// improved its site and the caller should schedule the expansion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_arrival(
    region: &mut Region,
    visited: &mut crate::propagate::VisitedMap,
    target: Marker,
    prop: usize,
    state: u8,
    node: NodeId,
    value: f32,
    origin: NodeId,
) -> Result<bool, CoreError> {
    region.arrive(target, node, value, origin)?;
    Ok(visited.should_expand(prop, state, node, value, origin))
}

/// Resolves the configured [`KernelStrategy`](crate::KernelStrategy) to
/// the kernel an engine actually runs, never returning `Auto`.
///
/// `Auto` picks the bitset wave kernel except where the scalar loop is
/// the only faithful choice: fuzzed schedules (the wave kernel draws no
/// picker decisions — the fuzzer's subject is the scalar spec) and
/// traced runs (a pull-direction wave emits per-destination event order,
/// not per-task order; counts are identical but traces would not
/// replay). An explicit `Scalar`/`Bitset` is honored as-is — the bitset
/// kernel is asserted bit-identical on results and reports either way.
pub(crate) fn resolve_kernel(
    config: &crate::MachineConfig,
    tracer_enabled: bool,
) -> crate::KernelStrategy {
    use crate::KernelStrategy;
    match config.kernel {
        KernelStrategy::Auto => {
            if config.schedule.is_fuzzed() || tracer_enabled {
                KernelStrategy::Scalar
            } else {
                KernelStrategy::Bitset
            }
        }
        explicit => explicit,
    }
}

/// Visited map for engines whose event- or thread-granular schedules
/// cannot be restructured into whole waves: a resolved `Bitset` kernel
/// swaps the dense visited backing for the bitmap-fronted one
/// (identical decisions, one-bit first-visit probes); anything else
/// defers to the configured visited strategy.
pub(crate) fn visited_map_for(
    config: &crate::MachineConfig,
    nodes: usize,
) -> crate::propagate::VisitedMap {
    use crate::propagate::VisitedMap;
    match resolve_kernel(config, config.trace.is_some()) {
        crate::KernelStrategy::Bitset => VisitedMap::bitset(nodes),
        _ => VisitedMap::with_strategy(config.visited, nodes),
    }
}

/// Drops a reordered expansion's arrivals when the planted ordering bug
/// (`fuzz-bug` feature) is armed. Inert — and fully optimized out — in
/// normal builds.
#[inline]
pub(crate) fn maybe_plant_bug(picker: &Picker, arrivals: &mut Vec<PropArrival>) {
    if picker.bug_armed() {
        arrivals.clear();
    }
}

/// Phase-closure protocol, chosen once per run.
///
/// Under fault injection or tracing the engine runs the faithful SNAP-1
/// protocol: per-level counters plus the busy-PE AND-tree
/// ([`TieredBarrier`], ~8 shared-atomic transitions per task). On the
/// clean fast path phase closure only needs "every created token was
/// consumed", so a single packed counter ([`CountingGate`], 2
/// transitions per task) closes phases instead. A fuzzed schedule may
/// force either protocol, so the fuzzer exercises both closure paths
/// against the same workload.
#[derive(Clone)]
pub(crate) enum PhaseGate {
    Fast(Arc<CountingGate>),
    Tiered(Arc<TieredBarrier>),
}

impl PhaseGate {
    /// Picks the protocol for this run. Injection and tracing *require*
    /// the tiered barrier (per-level attribution, injected
    /// counter-network stalls, barrier-arrive events); otherwise FIFO
    /// takes the counting fast path and a fuzzed strategy flips a coin —
    /// gate-close timing is one of the orderings under test.
    pub(crate) fn select(
        injector: Option<&Arc<FaultInjector>>,
        tracer: &Tracer,
        picker: &mut Picker,
    ) -> Self {
        if injector.is_some() || tracer.is_enabled() {
            PhaseGate::Tiered(TieredBarrier::with_instruments(
                injector.cloned(),
                tracer.clone(),
            ))
        } else if picker.coin() {
            PhaseGate::Fast(CountingGate::new())
        } else {
            PhaseGate::Tiered(TieredBarrier::with_instruments(None, tracer.clone()))
        }
    }

    #[inline]
    pub(crate) fn created(&self, level: u8) {
        match self {
            PhaseGate::Fast(g) => g.created(),
            PhaseGate::Tiered(b) => b.created(level),
        }
    }

    #[inline]
    pub(crate) fn consumed(&self, level: u8) {
        match self {
            PhaseGate::Fast(g) => g.consumed(),
            PhaseGate::Tiered(b) => b.consumed(level),
        }
    }

    /// The AND-tree busy bit only exists in the tiered protocol; the
    /// counting gate detects quiescence from the token count alone.
    #[inline]
    pub(crate) fn enter_busy(&self) {
        if let PhaseGate::Tiered(b) = self {
            b.enter_busy();
        }
    }

    #[inline]
    pub(crate) fn exit_busy(&self) {
        if let PhaseGate::Tiered(b) = self {
            b.exit_busy();
        }
    }

    pub(crate) fn wait_complete_timeout(&self, stall_after: Duration) -> Result<(), BarrierStall> {
        match self {
            PhaseGate::Fast(g) => g.wait_quiescent_timeout(stall_after),
            PhaseGate::Tiered(b) => b.wait_complete_timeout(stall_after),
        }
    }

    /// Snapshot check that the phase is (still) closed.
    pub(crate) fn is_complete(&self) -> bool {
        match self {
            PhaseGate::Fast(g) => g.is_quiescent(),
            PhaseGate::Tiered(b) => b.is_complete(),
        }
    }

    /// Fuzzed gate-close timing: after the gate first reports closure,
    /// yield the controller a strategy-chosen number of times and
    /// re-verify. A protocol that can close while a token is still in
    /// flight (false termination) is caught here as re-opened
    /// quiescence; a correct protocol never re-opens once the phase is
    /// quiet, because workers create tokens only while consuming one.
    pub(crate) fn confirm_complete(&self, picker: &mut Picker) -> bool {
        let rounds = picker.pick(4);
        for _ in 0..rounds {
            std::thread::yield_now();
        }
        self.is_complete()
    }

    pub(crate) fn in_flight(&self) -> i64 {
        match self {
            PhaseGate::Fast(g) => g.in_flight(),
            PhaseGate::Tiered(b) => b.in_flight(),
        }
    }

    pub(crate) fn busy_pes(&self) -> usize {
        match self {
            PhaseGate::Fast(_) => 0,
            PhaseGate::Tiered(b) => b.busy_pes(),
        }
    }

    pub(crate) fn reset(&self) {
        match self {
            PhaseGate::Fast(g) => g.reset(),
            PhaseGate::Tiered(b) => b.reset(),
        }
    }
}

/// A schedulable unit of a future transport: anything that can report
/// when it next has work and perform one step of it.
///
/// The three built-in engines special-case their scheduling for speed,
/// but they follow this exact discipline; an async or multi-process
/// engine implements `Component` directly and drives its parts with a
/// [`ComponentScheduler`], inheriting FIFO determinism and seeded
/// fuzzing without re-deriving either.
pub trait Component {
    /// The next virtual time this component has work, or `None` when it
    /// is drained.
    fn next_tick(&self) -> Option<u64>;
    /// Performs one step of work at virtual time `now`.
    fn tick(&mut self, now: u64);
}

/// Drives a set of [`Component`]s to quiescence under a
/// [`ScheduleStrategy`].
///
/// At each step every component due at the earliest pending tick is
/// *ready*; the strategy picks which of them fires. FIFO always fires
/// the lowest-indexed ready component; a fuzzed strategy permutes the
/// choice — the component-level analogue of the engines' ready-queue
/// and event-tie fuzzing.
pub struct ComponentScheduler {
    picker: Picker,
}

impl ComponentScheduler {
    /// A scheduler drawing decisions from `strategy` on `stream`.
    pub fn new(strategy: ScheduleStrategy, stream: u64) -> Self {
        ComponentScheduler {
            picker: Picker::new(strategy, stream),
        }
    }

    /// Runs `components` until none reports a next tick, returning the
    /// number of ticks fired. `max_ticks` bounds runaway components.
    pub fn run(&mut self, components: &mut [Box<dyn Component + '_>], max_ticks: u64) -> u64 {
        let mut fired = 0;
        while fired < max_ticks {
            let Some(now) = components.iter().filter_map(|c| c.next_tick()).min() else {
                break;
            };
            let ready: Vec<usize> = components
                .iter()
                .enumerate()
                .filter(|(_, c)| c.next_tick() == Some(now))
                .map(|(i, _)| i)
                .collect();
            let choice = ready[self.picker.pick(ready.len())];
            components[choice].tick(now);
            fired += 1;
        }
        fired
    }

    /// The decision fingerprint accumulated so far.
    pub fn digest(&self) -> u64 {
        self.picker.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_picker_never_reorders_and_never_draws() {
        let mut p = Picker::new(ScheduleStrategy::Fifo, CONTROL_STREAM);
        for len in [0, 1, 2, 100] {
            assert_eq!(p.pick(len), 0);
            assert!(!p.last_reordered());
        }
        assert!(p.coin());
        assert_eq!(p.tie_key(), 0);
        assert_eq!(p.decisions(), 0);
        assert_eq!(p.digest(), 0);
    }

    #[test]
    fn fuzzed_picker_is_deterministic_per_seed_and_stream() {
        let draws = |seed, stream| {
            let mut p = Picker::new(ScheduleStrategy::fuzzed(seed), stream);
            let v: Vec<usize> = (0..64).map(|_| p.pick(10)).collect();
            (v, p.digest())
        };
        assert_eq!(draws(7, 0), draws(7, 0));
        assert_ne!(draws(7, 0).0, draws(8, 0).0, "seed must matter");
        assert_ne!(draws(7, 0).0, draws(7, 1).0, "stream must matter");
    }

    #[test]
    fn fuzzed_limit_reverts_to_fifo() {
        let mut p = Picker::new(
            ScheduleStrategy::Fuzzed { seed: 3, limit: 5 },
            CONTROL_STREAM,
        );
        for _ in 0..5 {
            p.pick(100);
        }
        assert_eq!(p.decisions(), 5);
        // Decision budget exhausted: everything is FIFO from here on.
        for _ in 0..20 {
            assert_eq!(p.pick(100), 0);
            assert!(p.coin());
            assert_eq!(p.tie_key(), 0);
        }
        assert_eq!(p.decisions(), 5);
    }

    #[test]
    fn ready_queue_fifo_matches_vecdeque() {
        let mut p = Picker::new(ScheduleStrategy::Fifo, CONTROL_STREAM);
        let mut q = ReadyQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop(&mut p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ready_queue_fuzzed_permutes_but_loses_nothing() {
        let mut p = Picker::new(ScheduleStrategy::fuzzed(42), 1);
        let mut q = ReadyQueue::new();
        for i in 0..64 {
            q.push(i);
        }
        let mut order: Vec<i32> = std::iter::from_fn(|| q.pop(&mut p)).collect();
        assert_ne!(order, (0..64).collect::<Vec<_>>(), "seed 42 reorders");
        order.sort_unstable();
        assert_eq!(order, (0..64).collect::<Vec<_>>(), "every task fires");
    }

    #[test]
    fn event_queue_fifo_orders_by_time_then_insertion() {
        let mut p = Picker::new(ScheduleStrategy::Fifo, CONTROL_STREAM);
        let mut q = EventQueue::new();
        q.push(20, "c", &mut p);
        q.push(10, "a", &mut p);
        q.push(10, "b", &mut p);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn event_queue_fuzzed_permutes_only_equal_times() {
        // Distinct timestamps must stay in time order whatever the seed.
        for seed in 0..20 {
            let mut p = Picker::new(ScheduleStrategy::fuzzed(seed), 2);
            let mut q = EventQueue::new();
            for t in [30u64, 10, 20, 10, 20, 10] {
                q.push(t, t, &mut p);
            }
            let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
            assert_eq!(times, vec![10, 10, 10, 20, 20, 30], "seed {seed}");
        }
        // And some seed does permute equal-time insertion order.
        let permuted = (0..50).any(|seed| {
            let mut p = Picker::new(ScheduleStrategy::fuzzed(seed), 2);
            let mut q = EventQueue::new();
            for i in 0..8 {
                q.push(5, i, &mut p);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
            order != (0..8).collect::<Vec<_>>()
        });
        assert!(permuted, "no seed permuted equal-time events");
    }

    #[test]
    fn gate_selection_is_strategy_aware() {
        let tracer = Tracer::disabled();
        let mut fifo = Picker::new(ScheduleStrategy::Fifo, CONTROL_STREAM);
        assert!(matches!(
            PhaseGate::select(None, &tracer, &mut fifo),
            PhaseGate::Fast(_)
        ));
        // Some fuzz seed picks the tiered protocol even without faults.
        let tiered = (0..64).any(|seed| {
            let mut p = Picker::new(ScheduleStrategy::fuzzed(seed), CONTROL_STREAM);
            matches!(
                PhaseGate::select(None, &tracer, &mut p),
                PhaseGate::Tiered(_)
            )
        });
        assert!(tiered, "no seed selected the tiered gate");
        // Injection always forces the faithful protocol.
        let inj = Arc::new(FaultInjector::new(snap_fault::FaultPlan::seeded(1)));
        let mut p = Picker::new(ScheduleStrategy::fuzzed(0), CONTROL_STREAM);
        assert!(matches!(
            PhaseGate::select(Some(&inj), &tracer, &mut p),
            PhaseGate::Tiered(_)
        ));
    }

    #[test]
    fn gate_confirm_complete_holds_on_quiet_gate() {
        let mut p = Picker::new(ScheduleStrategy::fuzzed(9), CONTROL_STREAM);
        let gate = PhaseGate::select(None, &Tracer::disabled(), &mut p);
        gate.created(0);
        gate.consumed(0);
        assert!(gate.wait_complete_timeout(Duration::from_secs(1)).is_ok());
        assert!(gate.confirm_complete(&mut p));
    }

    /// A toy race: two producers append to a shared log; the schedule
    /// decides the interleaving. FIFO is stable; fuzzing permutes it —
    /// exactly the kind of ordering dependence the fuzzer exists to
    /// expose in components that (incorrectly) depend on it.
    #[test]
    fn component_scheduler_fuzzes_interleaving() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Producer {
            id: u8,
            remaining: u64,
            log: Rc<RefCell<Vec<u8>>>,
        }
        impl Component for Producer {
            fn next_tick(&self) -> Option<u64> {
                (self.remaining > 0).then_some(0)
            }
            fn tick(&mut self, _now: u64) {
                self.remaining -= 1;
                self.log.borrow_mut().push(self.id);
            }
        }

        let run = |strategy| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut parts: Vec<Box<dyn Component>> = (0..3u8)
                .map(|id| {
                    Box::new(Producer {
                        id,
                        remaining: 4,
                        log: Rc::clone(&log),
                    }) as Box<dyn Component>
                })
                .collect();
            let mut sched = ComponentScheduler::new(strategy, CONTROL_STREAM);
            let fired = sched.run(&mut parts, 1_000);
            assert_eq!(fired, 12, "every tick runs to quiescence");
            let order = log.borrow().clone();
            order
        };
        let fifo = run(ScheduleStrategy::Fifo);
        assert_eq!(fifo, run(ScheduleStrategy::Fifo), "FIFO is stable");
        let fuzzed = run(ScheduleStrategy::fuzzed(5));
        assert_eq!(
            fuzzed,
            run(ScheduleStrategy::fuzzed(5)),
            "same seed replays the same interleaving"
        );
        assert_ne!(fifo, fuzzed, "seed 5 interleaves differently");
        let mut sorted = fuzzed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "fuzzing loses no work");
    }

    #[test]
    fn strategy_default_is_fifo() {
        assert_eq!(ScheduleStrategy::default(), ScheduleStrategy::Fifo);
        assert!(ScheduleStrategy::fuzzed(1).is_fuzzed());
        assert!(!ScheduleStrategy::Fifo.is_fuzzed());
    }
}
