//! The threaded parallel engine: one real thread per cluster.
//!
//! Cluster threads own their regions and exchange marker messages
//! through the [`snap_net::Fabric`]; the controller (the calling thread)
//! broadcasts commands over channels, overlaps independent propagations,
//! and closes each propagation group with the tiered barrier
//! ([`snap_sync::TieredBarrier`]) — the same protocol the hardware
//! implements with its AND-tree and counter network. Logical results are
//! identical to the other engines; timing is wall-clock.
//!
//! # Resilience
//!
//! When a [`snap_fault::FaultPlan`] is attached, marker traffic runs a
//! resilient protocol instead of trusting the channels:
//!
//! * off-cluster markers bound for the same destination cluster are
//!   coalesced into one sequence-numbered, checksummed batch
//!   [`Envelope`] per expansion; receivers discard corrupted envelopes,
//!   suppress duplicates, and acknowledge everything else over the
//!   (uncounted but still faultable) control path — one ack and one
//!   barrier token per batch;
//! * senders hold each message's barrier created-token until the ack
//!   arrives, retransmitting with bounded exponential backoff
//!   ([`RetryPolicy`]) — so a dropped message can never produce a false
//!   termination, only a retry;
//! * the controller waits on the barrier through a watchdog
//!   ([`TieredBarrier::wait_complete_timeout`]) that distinguishes
//!   lost in-flight messages from wedged PEs instead of hanging;
//! * a worker-thread panic is caught, the dead cluster's region (as
//!   checkpointed at the phase start) is adopted by a live hypercube
//!   neighbor, and the propagation phase is replayed under a new epoch —
//!   graceful degradation in place of a crashed run.

use crate::config::{KernelStrategy, MachineConfig};
use crate::controller::{plan, PropSpec, Step};
use crate::engine::common::phase_of;
use crate::engine::sched::{
    apply_arrival, maybe_plant_bug, PhaseGate, Picker, ReadyQueue, ScheduleStrategy, CONTROL_STREAM,
};
use crate::error::CoreError;
use crate::propagate::{expand_into, PropArrival, PropTask, VisitedMap};
use crate::region::{Region, RegionMap};
use crate::report::{CollectOutput, RunReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use snap_fault::{Corruptible, DedupTable, Envelope, FaultInjector, RetryPolicy};
use snap_isa::{InstrClass, Instruction, Program};
use snap_kb::{ClusterId, Color, Link, MarkerValue, NodeId, SemanticNetwork};
use snap_net::{Fabric, HypercubeTopology};
use snap_obs::{FaultKind, PhaseKind, Tracer, CONTROLLER_TRACK};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a reply from a worker may reasonably take; exceeding it
/// means the worker died or wedged, and the run fails typed rather than
/// hanging.
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// Dead-air window after which the barrier watchdog classifies a stall
/// when faults are being injected (must comfortably exceed the longest
/// injected delay plus the retry backoff cap).
const FAULTY_STALL_WINDOW: Duration = Duration::from_millis(400);

/// Dead-air window for fault-free runs: nothing should ever stall, so
/// this is pure hang protection.
const CLEAN_STALL_WINDOW: Duration = Duration::from_secs(2);

/// Consecutive dead-air windows (with no crash to recover from) before
/// the controller gives up on a phase.
const MAX_STALL_STRIKES: u32 = 3;

/// Phase replays (cluster recoveries) before the controller declares the
/// run unrecoverable.
const MAX_REPLAYS: u32 = 4;

/// Commands from the controller to the cluster workers.
///
/// Commands that read the knowledge base carry the controller's current
/// network snapshot as an `Arc` clone: workers drop the clone before
/// replying, so between instructions the controller holds the only
/// reference and maintenance can mutate in place.
enum Cmd {
    /// Execute the local part of a non-propagate, non-collect
    /// instruction; reply `Done`.
    Global(Arc<Instruction>, Arc<SemanticNetwork>),
    /// Gather the local part of a retrieval; reply with the part.
    Collect(Arc<Instruction>, Arc<SemanticNetwork>),
    /// Report the nodes where a marker is active (marker-node
    /// maintenance support); reply `Active`.
    ActiveNodes(snap_kb::Marker),
    /// Enter propagation mode for these overlapped specs, under the
    /// given recovery epoch, over the given network snapshot.
    Prop {
        specs: Arc<Vec<PropSpec>>,
        epoch: u32,
        net: Arc<SemanticNetwork>,
    },
    /// Leave propagation mode (sent after the barrier completes).
    PhaseEnd,
    /// Abandon the current propagation phase: discard in-flight state,
    /// restore the phase-start checkpoint, reply `Done`.
    Abort,
    /// Adopt a dead neighbor's region (recovery); reply `Done`.
    Adopt(Box<Region>),
    /// Stop the worker.
    Shutdown,
}

/// Replies from workers to the controller.
enum Reply {
    Done,
    Nodes(Vec<(NodeId, Option<MarkerValue>)>),
    Links(Vec<(NodeId, Link)>),
    Colors(Vec<(NodeId, Color)>),
    Active(Vec<NodeId>),
    /// A worker thread panicked; sent by its catch-unwind wrapper.
    Crashed(usize),
}

/// Messages crossing the fabric during propagation.
#[derive(Debug, Clone)]
enum NetMsg {
    /// An enveloped batch of marker tasks, all bound for the same
    /// destination cluster: one checksum, one ack, one barrier token
    /// for the whole batch.
    Marker(Envelope<Vec<PropTask>>),
    /// Receiver → sender acknowledgement, echoing the envelope checksum
    /// so a corrupted ack cannot acknowledge the wrong payload.
    Ack { seq: u64, checksum: u64 },
}

impl Corruptible for NetMsg {
    fn corrupt(&mut self, salt: u64) {
        match self {
            NetMsg::Marker(env) => env.corrupt_in_flight(salt),
            NetMsg::Ack { checksum, .. } => *checksum ^= salt | 1,
        }
    }
}

/// An unacknowledged envelope awaiting its ack or retransmission.
struct PendingSend {
    env: Envelope<Vec<PropTask>>,
    /// Destination cluster — every task in the batch shares it.
    dest: ClusterId,
    /// Barrier level of the batch's single created-token.
    level: u8,
    attempts: u32,
    due: Instant,
}

/// How a worker left its propagation phase.
enum PhaseExit {
    /// Barrier completed; `PhaseEnd` received.
    Ended,
    /// Controller aborted the phase for a recovery replay.
    Aborted,
    /// Shutdown while in the phase.
    Shutdown,
}

/// Executes `program` on real threads.
pub(crate) fn run(
    config: &MachineConfig,
    network: &mut SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    config.validate();
    // Settle any staged relation-table inserts before regions are built,
    // so every worker's expansions take the indexed CSR fast path.
    network.flush_links();
    // Move the network into a shared snapshot. Workers read it through
    // Arc clones shipped with each command — the propagation hot path
    // touches no lock at all — and drop the clone before replying, so
    // between instructions the controller holds the only reference and
    // maintenance mutates in place through `Arc::make_mut` (no copy on
    // the common path).
    let empty = SemanticNetwork::new(*network.config());
    let shared = Arc::new(std::mem::replace(network, empty));
    let (shared, result) = run_arc(config, shared, program);
    // Hand the (possibly maintenance-mutated) network back to the caller
    // even on error. `run_arc` has dropped every worker-side snapshot
    // clone by now, so the unwrap only falls back to a copy after an
    // unrecovered crash.
    *network = Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone());
    result
}

/// Shared-snapshot variant of [`run`]: executes against an `Arc`'d
/// network without taking ownership. The facade has already rejected
/// maintenance instructions (which would fork the snapshot through
/// `Arc::make_mut`) and staged links, so the caller's snapshot is
/// observationally untouched.
pub(crate) fn run_shared(
    config: &MachineConfig,
    network: &Arc<SemanticNetwork>,
    program: &Program,
) -> Result<RunReport, CoreError> {
    config.validate();
    let (_shared, result) = run_arc(config, Arc::clone(network), program);
    result
}

/// The engine core over an owned `Arc` snapshot: spawns one worker per
/// cluster, walks the plan, and returns the (possibly replaced, if
/// maintenance forked it) snapshot alongside the report.
fn run_arc(
    config: &MachineConfig,
    mut shared: Arc<SemanticNetwork>,
    program: &Program,
) -> (Arc<SemanticNetwork>, Result<RunReport, CoreError>) {
    let started = Instant::now();
    let injector = config
        .fault_plan
        .clone()
        .map(|plan| Arc::new(FaultInjector::new(plan)));
    let map = RegionMap::build(&shared, config.clusters, config.partition);
    let partition_stats = map.partition().stats(&shared);
    let topology = HypercubeTopology::covering(config.clusters);
    let tracer = Tracer::from_config(config.trace.as_ref(), config.clusters);
    let (fabric, mut fabric_rxs) =
        Fabric::<NetMsg>::with_instruments(topology, injector.clone(), tracer.clone());
    // The controller keeps a clone of every fabric receiver so a dead
    // worker's channel never disconnects (which would panic senders) and
    // its undelivered traffic can be drained during recovery.
    let rx_backups: Vec<Receiver<NetMsg>> = fabric_rxs.clone();
    // The covering topology may span more address slots than the machine
    // has clusters (e.g. 5 clusters on a 4x2 cube); the fabric allocates
    // one channel per slot. Keep only the first `clusters` receivers so
    // the reversed pop below pairs worker c with receiver c — a worker
    // listening on the wrong slot silently strands every message sent to
    // it, which the barrier watchdog then reports as lost.
    fabric_rxs.truncate(config.clusters);
    // Phase-closure protocol and every controller-side schedule decision
    // draw from the control stream's picker; a fuzzed schedule may also
    // flip the gate choice (see `PhaseGate::select`).
    let mut ctrl_picker = Picker::new(config.schedule, CONTROL_STREAM);
    let gate = PhaseGate::select(injector.as_ref(), &tracer, &mut ctrl_picker);
    // A fuzzed schedule additionally permutes fabric delivery order:
    // counted marker envelopes may be held back one-deep per destination
    // until overtaken or flushed by an idle worker.
    if let ScheduleStrategy::Fuzzed { seed, .. } = config.schedule {
        fabric.enable_reorder(seed);
    }
    // owners[c] = worker currently holding cluster c's region.
    let owners: Arc<Vec<AtomicUsize>> =
        Arc::new((0..config.clusters).map(AtomicUsize::new).collect());
    let checkpoints: Arc<Mutex<Vec<Option<Region>>>> =
        Arc::new(Mutex::new(vec![None; config.clusters]));
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);
    let tasks_sent = Arc::new(AtomicU64::new(0));

    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(config.clusters);
    let mut cmd_rxs: Vec<Receiver<Cmd>> = Vec::with_capacity(config.clusters);
    for _ in 0..config.clusters {
        let (tx, rx) = unbounded();
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }

    let steps = plan(program);

    let mut controller = Controller {
        clusters: config.clusters,
        cmd_txs,
        reply_rx,
        live: vec![true; config.clusters],
        owners: Arc::clone(&owners),
        checkpoints: Arc::clone(&checkpoints),
        gate: gate.clone(),
        fabric: fabric.clone(),
        rx_backups,
        injector: injector.clone(),
        epoch: 0,
        pending_crash: None,
        report: RunReport::default(),
        msgs_before_phase: 0,
        replays: 0,
        tracer: tracer.clone(),
        picker: ctrl_picker,
    };

    let scope_result = std::thread::scope(|scope| -> Result<(), CoreError> {
        // Spawn one worker per cluster, each under a panic catcher that
        // reports the crash instead of aborting the whole scope.
        for c in (0..config.clusters).rev() {
            let region = Region::new(ClusterId(c as u8), Arc::clone(&map), &shared);
            let worker = Worker {
                cluster: c,
                max_hops: config.max_hops,
                region,
                adopted: Vec::new(),
                map: Arc::clone(&map),
                cmd_rx: cmd_rxs.pop().expect("one rx per cluster"),
                reply_tx: reply_tx.clone(),
                fabric: fabric.clone(),
                fabric_rx: fabric_rxs.pop().expect("one fabric rx per cluster"),
                gate: gate.clone(),
                first_error: &first_error,
                injector: injector.clone(),
                retry: RetryPolicy::default(),
                owners: Arc::clone(&owners),
                checkpoints: Arc::clone(&checkpoints),
                epoch: 0,
                next_seq: 0,
                pending: HashMap::new(),
                dedup: DedupTable::new(),
                steps: 0,
                arrivals: Vec::new(),
                queue: ReadyQueue::new(),
                visited: match crate::engine::sched::resolve_kernel(config, config.trace.is_some())
                {
                    KernelStrategy::Bitset => VisitedMap::bitset(shared.node_count()),
                    _ => VisitedMap::with_strategy(config.visited, shared.node_count()),
                },
                picker: Picker::new(config.schedule, c as u64 + 1),
                batch_bufs: vec![Vec::new(); config.clusters],
                batch_order: Vec::new(),
                tasks_sent: Arc::clone(&tasks_sent),
                tracer: tracer.clone(),
            };
            let crash_tx = reply_tx.clone();
            scope.spawn(move || {
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || worker.run()));
                if caught.is_err() {
                    let _ = crash_tx.send(Reply::Crashed(c));
                }
            });
        }
        drop(reply_tx);

        let result = (|| -> Result<(), CoreError> {
            for step in &steps {
                match step {
                    Step::Instr(idx) => {
                        let instr = &program.instructions()[*idx];
                        tracer.phase_start(phase_of(instr.class()), tracer.wall_stamp());
                        let t0 = Instant::now();
                        controller.exec_instr(instr, &mut shared)?;
                        check_error(&first_error)?;
                        let ns = t0.elapsed().as_nanos() as u64;
                        controller.report.record(instr.class(), ns);
                        tracer.phase_end(tracer.wall_stamp());
                    }
                    Step::Group(indices) => {
                        let t0 = Instant::now();
                        let specs: Arc<Vec<PropSpec>> = Arc::new(
                            indices
                                .iter()
                                .enumerate()
                                .map(|(g, &idx)| PropSpec::compile(g, &program.instructions()[idx]))
                                .collect(),
                        );
                        controller.run_phase(&specs, &shared, &first_error)?;
                        let ns = t0.elapsed().as_nanos() as u64;
                        for _ in indices {
                            controller
                                .report
                                .record(InstrClass::Propagate, ns / indices.len() as u64);
                        }
                    }
                }
            }
            Ok(())
        })();
        for (c, tx) in controller.cmd_txs.iter().enumerate() {
            if controller.live[c] {
                let _ = tx.send(Cmd::Shutdown);
            }
        }
        result
    });
    // Dropping the command channels releases any snapshot clones
    // stranded in a dead worker's queue before the caller inspects the
    // Arc's reference count.
    controller.cmd_txs.clear();
    if let Err(e) = scope_result {
        return (shared, Err(e));
    }

    let mut report = controller.report;
    // Replay fingerprint: the control stream's decisions only. Worker
    // streams are individually deterministic per seed, but which worker
    // draws how many decisions depends on real thread timing.
    report.schedule_digest = controller.picker.digest();
    report.partition = Some(partition_stats);
    report.traffic.total_messages = fabric.messages();
    report.traffic.total_hops = fabric.hops();
    report.traffic.tasks_sent = tasks_sent.load(Ordering::Relaxed);
    if let Some(inj) = &injector {
        report.faults = inj.report();
    }
    report.trace = tracer.report();
    report.wall_ns = started.elapsed().as_nanos();
    (shared, Ok(report))
}

fn check_error(slot: &Mutex<Option<CoreError>>) -> Result<(), CoreError> {
    match slot.lock().take() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Controller-side state: command routing, liveness, and recovery.
struct Controller {
    clusters: usize,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rx: Receiver<Reply>,
    live: Vec<bool>,
    owners: Arc<Vec<AtomicUsize>>,
    checkpoints: Arc<Mutex<Vec<Option<Region>>>>,
    gate: PhaseGate,
    fabric: Fabric<NetMsg>,
    rx_backups: Vec<Receiver<NetMsg>>,
    injector: Option<Arc<FaultInjector>>,
    epoch: u32,
    pending_crash: Option<usize>,
    report: RunReport,
    msgs_before_phase: u64,
    replays: u32,
    tracer: Tracer,
    /// Control-stream schedule decisions (gate choice, close re-checks).
    picker: Picker,
}

impl Controller {
    fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Sends `cmd` to worker `c`, converting a closed channel into the
    /// typed worker failure it signifies.
    fn send_cmd(&self, c: usize, cmd: Cmd) -> Result<(), CoreError> {
        self.cmd_txs[c]
            .send(cmd)
            .map_err(|_| CoreError::WorkerFailed {
                cluster: c,
                cause: "command channel closed".into(),
            })
    }

    /// Receives one worker reply, stashing crash notices; a silent
    /// worker fails the run typed instead of hanging it.
    fn recv_reply(&mut self) -> Result<Reply, CoreError> {
        loop {
            match self.reply_rx.recv_timeout(REPLY_TIMEOUT) {
                Ok(Reply::Crashed(c)) => self.pending_crash = Some(c),
                Ok(reply) => return Ok(reply),
                Err(_) => {
                    return Err(CoreError::WorkerFailed {
                        cluster: self.pending_crash.unwrap_or(0),
                        cause: "no reply from workers within the timeout".into(),
                    })
                }
            }
        }
    }

    /// Collects `n` `Done` replies.
    fn collect_done(&mut self, n: usize) -> Result<(), CoreError> {
        let mut done = 0;
        while done < n {
            if let Reply::Done = self.recv_reply()? {
                done += 1;
            }
        }
        Ok(())
    }

    /// The most recent crash notice, if any.
    fn poll_crash(&mut self) -> Option<usize> {
        if let Some(c) = self.pending_crash.take() {
            return Some(c);
        }
        while let Ok(reply) = self.reply_rx.try_recv() {
            // Anything else is a stray reply from an aborted phase.
            if let Reply::Crashed(c) = reply {
                return Some(c);
            }
        }
        None
    }

    /// Runs one overlapped propagation group to barrier completion,
    /// recovering from worker crashes by replaying the phase.
    fn run_phase(
        &mut self,
        specs: &Arc<Vec<PropSpec>>,
        shared: &Arc<SemanticNetwork>,
        first_error: &Mutex<Option<CoreError>>,
    ) -> Result<(), CoreError> {
        let window = if self.injector.is_some() {
            FAULTY_STALL_WINDOW
        } else {
            CLEAN_STALL_WINDOW
        };
        // One Propagate phase per group; a replayed phase keeps
        // accumulating into the same slot (replays only happen on
        // faulted runs, where phase statistics are advisory).
        self.tracer
            .phase_start(PhaseKind::Propagate, self.tracer.wall_stamp());
        'replay: loop {
            self.epoch += 1;
            for c in 0..self.clusters {
                if self.live[c] {
                    // One phase token per worker prevents completion
                    // before every cluster has seeded its sources.
                    self.gate.created(0);
                    self.send_cmd(
                        c,
                        Cmd::Prop {
                            specs: Arc::clone(specs),
                            epoch: self.epoch,
                            net: Arc::clone(shared),
                        },
                    )?;
                }
            }
            let wait_t0 = Instant::now();
            let mut strikes = 0;
            loop {
                match self.gate.wait_complete_timeout(window) {
                    Ok(()) => {
                        // Fuzzed gate-close timing: yield a strategy-
                        // chosen number of times and re-verify. A closure
                        // protocol that can report quiescence with a
                        // token still in flight (a false termination)
                        // re-opens here and fails typed.
                        if self.gate.confirm_complete(&mut self.picker) {
                            break;
                        }
                        return Err(CoreError::BarrierStalled {
                            reason: "gate re-opened after reporting completion (false termination)"
                                .into(),
                        });
                    }
                    Err(stall) => {
                        // A held-back envelope must never be mistaken for
                        // a stall: release the reorder hook's slots.
                        self.fabric.flush_held();
                        self.tracer.barrier_stall(
                            self.gate.in_flight(),
                            self.gate.busy_pes() as u64,
                            self.tracer.wall_stamp(),
                        );
                        if let Some(dead) = self.poll_crash() {
                            self.recover(dead, first_error)?;
                            continue 'replay;
                        }
                        check_error(first_error)?;
                        strikes += 1;
                        if strikes >= MAX_STALL_STRIKES {
                            return Err(CoreError::BarrierStalled {
                                reason: stall.to_string(),
                            });
                        }
                    }
                }
            }
            let wait_ns = wait_t0.elapsed().as_nanos() as u64;
            for c in 0..self.clusters {
                if self.live[c] {
                    self.send_cmd(c, Cmd::PhaseEnd)?;
                }
            }
            self.collect_done(self.live_count())?;
            // A crash racing barrier completion surfaces here; replaying
            // is still correct because phase checkpoints are intact.
            if let Some(dead) = self.poll_crash() {
                self.recover(dead, first_error)?;
                continue 'replay;
            }
            check_error(first_error)?;
            let stamp = self.tracer.wall_stamp();
            self.tracer.phase_end(stamp);
            self.tracer.phase_start(PhaseKind::Barrier, stamp);
            self.tracer
                .barrier_wait(CONTROLLER_TRACK, wait_ns, self.tracer.wall_stamp());
            self.tracer.phase_end(self.tracer.wall_stamp());
            self.report.barriers += 1;
            let now_msgs = self.fabric.messages();
            self.report
                .traffic
                .messages_per_sync
                .push(now_msgs - self.msgs_before_phase);
            self.msgs_before_phase = now_msgs;
            return Ok(());
        }
    }

    /// Graceful degradation after worker `dead` panicked: quiesce the
    /// survivors, reset the barrier, hand every region the dead worker
    /// held to a live hypercube neighbor, and let the caller replay the
    /// phase under a fresh epoch.
    fn recover(
        &mut self,
        dead: usize,
        first_error: &Mutex<Option<CoreError>>,
    ) -> Result<(), CoreError> {
        self.replays += 1;
        if self.replays > MAX_REPLAYS {
            return Err(CoreError::WorkerFailed {
                cluster: dead,
                cause: format!("unrecoverable: {MAX_REPLAYS} phase replays exhausted"),
            });
        }
        self.live[dead] = false;
        if self.live_count() == 0 {
            return Err(CoreError::WorkerFailed {
                cluster: dead,
                cause: "worker panicked with no surviving cluster to adopt its region".into(),
            });
        }
        for c in 0..self.clusters {
            if self.live[c] {
                self.send_cmd(c, Cmd::Abort)?;
            }
        }
        self.collect_done(self.live_count())?;
        // Survivors are idle now. Errors raised during the crashed phase
        // (e.g. retransmissions to the dead worker exhausting) are
        // symptoms of the crash; the replay re-raises any that are real.
        *first_error.lock() = None;
        // Abandon the dead phase's barrier accounting and any traffic
        // still queued for the dead worker.
        self.gate.reset();
        while self.rx_backups[dead].try_recv().is_ok() {}
        // Prefer a hypercube neighbor (cheapest adoption in the modelled
        // network); fall back to any live worker.
        let heir = self
            .fabric
            .topology()
            .neighbors(ClusterId(dead as u8))
            .into_iter()
            .map(|c| c.index())
            .find(|&n| self.live[n])
            .or_else(|| (0..self.clusters).find(|&n| self.live[n]))
            .expect("live_count checked above");
        let mut adoptions = Vec::new();
        {
            let checkpoints = self.checkpoints.lock();
            for cl in 0..self.clusters {
                if self.owners[cl].load(Ordering::Acquire) == dead {
                    let region =
                        checkpoints[cl]
                            .clone()
                            .ok_or_else(|| CoreError::WorkerFailed {
                                cluster: dead,
                                cause: format!("no checkpoint for cluster {cl}'s region"),
                            })?;
                    adoptions.push((cl, region));
                }
            }
        }
        for (cl, region) in adoptions {
            self.owners[cl].store(heir, Ordering::Release);
            self.send_cmd(heir, Cmd::Adopt(Box::new(region)))?;
            self.collect_done(1)?;
            if let Some(inj) = &self.injector {
                inj.note_remapped_region();
            }
        }
        if let Some(inj) = &self.injector {
            inj.note_recovered_worker();
            inj.note_replay();
        }
        self.report.faults.recovered_workers += 1;
        Ok(())
    }

    /// Controller-side execution of one non-propagate instruction.
    fn exec_instr(
        &mut self,
        instr: &Instruction,
        net: &mut Arc<SemanticNetwork>,
    ) -> Result<(), CoreError> {
        match instr.class() {
            InstrClass::Maintenance => self.exec_maintenance(instr, net),
            InstrClass::Collect => {
                let shared = Arc::new(instr.clone());
                for c in 0..self.clusters {
                    if self.live[c] {
                        self.send_cmd(c, Cmd::Collect(Arc::clone(&shared), Arc::clone(net)))?;
                    }
                }
                let mut nodes = Vec::new();
                let mut links = Vec::new();
                let mut colors = Vec::new();
                for _ in 0..self.live_count() {
                    match self.recv_reply()? {
                        Reply::Nodes(mut v) => nodes.append(&mut v),
                        Reply::Links(mut v) => links.append(&mut v),
                        Reply::Colors(mut v) => colors.append(&mut v),
                        _ => {}
                    }
                }
                let out = match instr {
                    Instruction::CollectMarker { .. } => {
                        nodes.sort_by_key(|(n, _)| *n);
                        CollectOutput::Nodes(nodes)
                    }
                    Instruction::CollectRelation { .. } => {
                        links.sort_by_key(|(n, l)| (*n, l.destination));
                        CollectOutput::Links(links)
                    }
                    _ => {
                        colors.sort_by_key(|(n, _)| *n);
                        CollectOutput::Colors(colors)
                    }
                };
                self.report.collects.push(out);
                Ok(())
            }
            InstrClass::Barrier => {
                self.report.barriers += 1;
                self.report.traffic.messages_per_sync.push(0);
                Ok(())
            }
            _ => {
                let shared = Arc::new(instr.clone());
                for c in 0..self.clusters {
                    if self.live[c] {
                        self.send_cmd(c, Cmd::Global(Arc::clone(&shared), Arc::clone(net)))?;
                    }
                }
                self.collect_done(self.live_count())
            }
        }
    }

    /// Nodes where `marker` is active, across every live region.
    fn active_marked(&mut self, marker: snap_kb::Marker) -> Result<Vec<NodeId>, CoreError> {
        for c in 0..self.clusters {
            if self.live[c] {
                self.send_cmd(c, Cmd::ActiveNodes(marker))?;
            }
        }
        let mut nodes = Vec::new();
        for _ in 0..self.live_count() {
            if let Reply::Active(mut v) = self.recv_reply()? {
                nodes.append(&mut v);
            }
        }
        nodes.sort_unstable();
        Ok(nodes)
    }

    /// Node/marker maintenance runs on the controller while the array is
    /// quiescent (the paper's "housekeeping when the pipeline is empty").
    ///
    /// Workers drop their snapshot clones before replying to each
    /// command, so by the time a maintenance instruction executes the
    /// controller normally holds the only reference and `Arc::make_mut`
    /// mutates in place; it only falls back to a copy when a crashed
    /// worker stranded a clone.
    fn exec_maintenance(
        &mut self,
        instr: &Instruction,
        net: &mut Arc<SemanticNetwork>,
    ) -> Result<(), CoreError> {
        match instr {
            Instruction::Create {
                source,
                relation,
                weight,
                destination,
            } => Arc::make_mut(net).add_link(*source, *relation, *weight, *destination)?,
            Instruction::Delete {
                source,
                relation,
                destination,
            } => Arc::make_mut(net).remove_link(*source, *relation, *destination)?,
            Instruction::SetColor { node, color } => Arc::make_mut(net).set_color(*node, *color)?,
            Instruction::MarkerCreate {
                marker,
                forward,
                end,
                reverse,
            } => {
                let nodes = self.active_marked(*marker)?;
                let net = Arc::make_mut(net);
                for n in nodes {
                    net.add_link(n, *forward, 0.0, *end)?;
                    net.add_link(*end, *reverse, 0.0, n)?;
                }
            }
            Instruction::MarkerDelete {
                marker,
                forward,
                end,
                reverse,
            } => {
                let nodes = self.active_marked(*marker)?;
                let net = Arc::make_mut(net);
                for n in nodes {
                    net.remove_link(n, *forward, *end)?;
                    net.remove_link(*end, *reverse, n)?;
                }
            }
            Instruction::MarkerSetColor { marker, color } => {
                let nodes = self.active_marked(*marker)?;
                let net = Arc::make_mut(net);
                for n in nodes {
                    net.set_color(n, *color)?;
                }
            }
            _ => unreachable!("not a maintenance instruction"),
        }
        // Maintenance may stage relation-table inserts; settle them while
        // the array is quiescent so the next propagation phase expands
        // over the indexed CSR layout.
        Arc::make_mut(net).flush_links();
        Ok(())
    }
}

/// One cluster's worker thread.
struct Worker<'env> {
    cluster: usize,
    max_hops: u8,
    region: Region,
    /// Regions adopted from dead clusters (graceful degradation).
    adopted: Vec<Region>,
    map: Arc<RegionMap>,
    cmd_rx: Receiver<Cmd>,
    reply_tx: Sender<Reply>,
    fabric: Fabric<NetMsg>,
    fabric_rx: Receiver<NetMsg>,
    gate: PhaseGate,
    first_error: &'env Mutex<Option<CoreError>>,
    injector: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
    owners: Arc<Vec<AtomicUsize>>,
    checkpoints: Arc<Mutex<Vec<Option<Region>>>>,
    /// Current recovery epoch; envelopes from older epochs are stale.
    epoch: u32,
    next_seq: u64,
    pending: HashMap<u64, PendingSend>,
    dedup: DedupTable,
    /// Tasks this worker has executed (the injected-panic step counter).
    steps: u64,
    /// Reused arrival buffer for [`expand_into`] (no per-task allocation).
    arrivals: Vec<PropArrival>,
    /// Reused propagation work queue (cleared, not dropped, per phase).
    queue: ReadyQueue<PropTask>,
    /// Reused visited map (reset, not reallocated, per phase).
    visited: VisitedMap,
    /// This worker's schedule decision stream (stream id `cluster + 1`;
    /// stream 0 is the controller's).
    picker: Picker,
    /// Per-destination-cluster send staging, indexed by cluster; paired
    /// with `batch_order` so expansion routes off-cluster arrivals in
    /// O(1) instead of a linear scan per arrival.
    batch_bufs: Vec<Vec<PropTask>>,
    /// Destinations touched by the current expansion, in first-touch
    /// order (which fixes envelope sequence numbering).
    batch_order: Vec<ClusterId>,
    /// Run-wide count of individual tasks sent off-cluster (batching
    /// evidence next to the fabric's envelope count).
    tasks_sent: Arc<AtomicU64>,
    tracer: Tracer,
}

impl Worker<'_> {
    fn id(&self) -> ClusterId {
        ClusterId(self.cluster as u8)
    }

    fn resilient(&self) -> bool {
        self.injector.is_some()
    }

    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            // Every arm drops its snapshot clone (`net`) before replying:
            // the reply releases the reference back to the controller,
            // which lets maintenance mutate the network without copying.
            match cmd {
                Cmd::Shutdown => return,
                Cmd::Global(instr, net) => {
                    if let Err(e) = self.exec_local(&instr, &net) {
                        self.report_error(e);
                    }
                    drop(net);
                    let _ = self.reply_tx.send(Reply::Done);
                }
                Cmd::Collect(instr, net) => {
                    let reply = self.exec_collect(&instr, &net);
                    drop(net);
                    let _ = self.reply_tx.send(reply);
                }
                Cmd::ActiveNodes(marker) => {
                    let mut nodes = self.region.active_nodes(marker);
                    for r in &self.adopted {
                        nodes.extend(r.active_nodes_iter(marker));
                    }
                    let _ = self.reply_tx.send(Reply::Active(nodes));
                }
                Cmd::Adopt(region) => {
                    self.adopted.push(*region);
                    let _ = self.reply_tx.send(Reply::Done);
                }
                Cmd::Prop { specs, epoch, net } => {
                    self.epoch = epoch;
                    let exit = self.propagation_phase(&specs, &net);
                    drop(net);
                    match exit {
                        PhaseExit::Shutdown => return,
                        PhaseExit::Ended | PhaseExit::Aborted => {
                            let _ = self.reply_tx.send(Reply::Done);
                        }
                    }
                }
                Cmd::PhaseEnd | Cmd::Abort => {} // stray after an abort race
            }
        }
    }

    fn report_error(&self, e: CoreError) {
        self.first_error.lock().get_or_insert(e);
    }

    /// The region holding `node` on this worker (own or adopted).
    fn region_for(&mut self, node: NodeId) -> Option<&mut Region> {
        let cluster = self.map.cluster_of(node);
        if cluster.index() == self.cluster {
            return Some(&mut self.region);
        }
        self.adopted.iter_mut().find(|r| r.cluster() == cluster)
    }

    fn exec_collect(&mut self, instr: &Instruction, net: &SemanticNetwork) -> Reply {
        let mut regions: Vec<&Region> = Vec::with_capacity(1 + self.adopted.len());
        regions.push(&self.region);
        regions.extend(self.adopted.iter());
        match instr {
            Instruction::CollectMarker { marker } => Reply::Nodes(
                regions
                    .iter()
                    .flat_map(|r| r.collect_marker(*marker))
                    .collect(),
            ),
            Instruction::CollectRelation { marker, relation } => Reply::Links(
                regions
                    .iter()
                    .flat_map(|r| r.collect_relation(net, *marker, *relation))
                    .collect(),
            ),
            Instruction::CollectColor { marker } => Reply::Colors(
                regions
                    .iter()
                    .flat_map(|r| r.collect_color(net, *marker))
                    .collect(),
            ),
            _ => Reply::Done,
        }
    }

    fn exec_local(&mut self, instr: &Instruction, net: &SemanticNetwork) -> Result<(), CoreError> {
        // Adopted regions execute the same local part: the heir does the
        // work of the cluster it covers.
        let adopted = &mut self.adopted;
        let own = &mut self.region;
        let mut for_each = |f: &mut dyn FnMut(&mut Region) -> Result<(), CoreError>| {
            f(own)?;
            for r in adopted.iter_mut() {
                f(r)?;
            }
            Ok(())
        };
        match instr {
            Instruction::SearchNode {
                node,
                marker,
                value,
            } => for_each(&mut |r| r.search_node(*node, *marker, *value).map(|_| ())),
            Instruction::SearchRelation {
                relation,
                marker,
                value,
            } => for_each(&mut |r| {
                r.search_relation(net, *relation, *marker, *value)
                    .map(|_| ())
            }),
            Instruction::SearchColor {
                color,
                marker,
                value,
            } => for_each(&mut |r| r.search_color(net, *color, *marker, *value).map(|_| ())),
            Instruction::AndMarker {
                a,
                b,
                target,
                combine,
            } => for_each(&mut |r| r.bool_op(true, *a, *b, *target, *combine).map(|_| ())),
            Instruction::OrMarker {
                a,
                b,
                target,
                combine,
            } => for_each(&mut |r| r.bool_op(false, *a, *b, *target, *combine).map(|_| ())),
            Instruction::NotMarker { source, target } => {
                for_each(&mut |r| r.not_op(*source, *target).map(|_| ()))
            }
            Instruction::SetMarker { marker, value } => {
                for_each(&mut |r| r.set_marker(*marker, *value).map(|_| ()))
            }
            Instruction::ClearMarker { marker } => {
                for_each(&mut |r| r.clear_marker(*marker).map(|_| ()))
            }
            Instruction::FuncMarker { marker, func } => {
                for_each(&mut |r| r.func_marker(*marker, *func).map(|_| ()))
            }
            _ => Ok(()),
        }
    }

    /// MIMD propagation under local control, with counted accounting:
    /// every task/message is counted created before it becomes visible
    /// and consumed after it is fully processed.
    fn propagation_phase(&mut self, specs: &[PropSpec], net: &SemanticNetwork) -> PhaseExit {
        if self.resilient() {
            // Checkpoint every region this worker holds so the phase can
            // be replayed (by us or by an heir) after a crash.
            let mut cps = self.checkpoints.lock();
            cps[self.cluster] = Some(self.region.clone());
            for r in &self.adopted {
                cps[r.cluster().index()] = Some(r.clone());
            }
            drop(cps);
            self.next_seq = 0;
            self.pending.clear();
            self.dedup.clear();
        }
        // The visited map and work queue persist across phases; only
        // their contents are per-phase (reset keeps capacity).
        let mut visited = std::mem::take(&mut self.visited);
        visited.reset();
        let mut queue = std::mem::take(&mut self.queue);
        let exit = self.phase_loop(specs, net, &mut visited, &mut queue);
        queue.clear();
        self.queue = queue;
        self.visited = visited;
        exit
    }

    fn phase_loop(
        &mut self,
        specs: &[PropSpec],
        net: &SemanticNetwork,
        visited: &mut VisitedMap,
        queue: &mut ReadyQueue<PropTask>,
    ) -> PhaseExit {
        // Seed local sources, then consume the controller's phase token.
        self.gate.enter_busy();
        for spec in specs {
            let mut sources: Vec<(NodeId, f32)> = Vec::new();
            for r in std::iter::once(&self.region).chain(self.adopted.iter()) {
                for node in r.active_nodes(spec.source) {
                    sources.push((node, r.source_value(spec.source, node)));
                }
            }
            for (node, value) in sources {
                if visited.should_expand(spec.prop, 0, node, value, node) {
                    self.gate.created(0);
                    queue.push(PropTask {
                        prop: spec.prop,
                        node,
                        state: 0,
                        value,
                        origin: node,
                        level: 0,
                    });
                }
            }
        }
        self.gate.consumed(0);
        self.gate.exit_busy();

        loop {
            if self.resilient() {
                // Deliver any injected-delay traffic that has come due.
                self.fabric.poll_delayed();
            }
            // Remote arrivals first, then local work — unless a fuzzed
            // schedule flips the coin and lets queued work overtake the
            // fabric. FIFO's coin is always `true`, so the historical
            // fabric-first order is preserved bit for bit; the coin is
            // only drawn while local work exists, so idle spinning never
            // burns fuzz-decision budget.
            let queue_first = !queue.is_empty() && !self.picker.coin();
            if !queue_first {
                if let Ok(msg) = self.fabric_rx.try_recv() {
                    self.gate.enter_busy();
                    self.handle_net(specs, visited, queue, msg);
                    self.gate.exit_busy();
                    continue;
                }
            }
            if let Some(task) = queue.pop(&mut self.picker) {
                if self.tracer.is_enabled() {
                    self.tracer.queue_depth(
                        self.cluster as u16,
                        queue.len() as u64,
                        self.tracer.wall_stamp(),
                    );
                }
                self.gate.enter_busy();
                self.expand_task(specs, net, visited, queue, &task);
                self.gate.consumed(task.level.min(63));
                self.gate.exit_busy();
                continue;
            }
            if self.resilient() && self.drive_retries() {
                continue;
            }
            match self.cmd_rx.try_recv() {
                Ok(Cmd::PhaseEnd) => return PhaseExit::Ended,
                Ok(Cmd::Abort) => {
                    self.abort_phase();
                    return PhaseExit::Aborted;
                }
                Ok(Cmd::Shutdown) => return PhaseExit::Shutdown,
                _ => {
                    // Idle: release any envelopes the fuzzer's reorder
                    // hook is holding back, so held traffic cannot be
                    // mistaken for quiescence or a stall.
                    self.fabric.flush_held();
                    std::thread::yield_now()
                }
            }
        }
    }

    /// Discards the aborted phase's state and restores the phase-start
    /// checkpoints; the controller resets the barrier.
    fn abort_phase(&mut self) {
        while self.fabric_rx.try_recv().is_ok() {}
        self.pending.clear();
        self.dedup.clear();
        let cps = self.checkpoints.lock();
        if let Some(cp) = &cps[self.cluster] {
            self.region = cp.clone();
        }
        for r in &mut self.adopted {
            if let Some(cp) = &cps[r.cluster().index()] {
                *r = cp.clone();
            }
        }
    }

    /// Processes one fabric message under the resilient protocol.
    fn handle_net(
        &mut self,
        specs: &[PropSpec],
        visited: &mut VisitedMap,
        queue: &mut ReadyQueue<PropTask>,
        msg: NetMsg,
    ) {
        match msg {
            NetMsg::Marker(env) => {
                if self.resilient() {
                    if !env.is_intact() {
                        // Nothing in a corrupted envelope can be trusted,
                        // not even the sender: discard without consuming —
                        // the sender still holds the token and retries.
                        if let Some(inj) = &self.injector {
                            inj.note_detected_corruption();
                        }
                        self.tracer.fault(
                            self.cluster as u16,
                            FaultKind::Corruption,
                            self.tracer.wall_stamp(),
                        );
                        return;
                    }
                    if env.epoch != self.epoch {
                        // Stale traffic from before a recovery; its
                        // accounting was reset with the barrier.
                        return;
                    }
                    // Ack first (the previous ack may have been lost)...
                    self.fabric.send_control(
                        self.id(),
                        ClusterId(env.from),
                        NetMsg::Ack {
                            seq: env.seq,
                            checksum: env.checksum(),
                        },
                    );
                    // ...then suppress duplicates: the fresh copy already
                    // consumed this envelope's created-token.
                    if !self.dedup.insert(env.key()) {
                        if let Some(inj) = &self.injector {
                            inj.note_detected_duplicate();
                        }
                        self.tracer.fault(
                            self.cluster as u16,
                            FaultKind::Duplicate,
                            self.tracer.wall_stamp(),
                        );
                        return;
                    }
                }
                self.tracer.msg_recv(
                    u16::from(env.from),
                    self.cluster as u16,
                    self.tracer.wall_stamp(),
                );
                // One batch = one barrier token: every task in the
                // envelope shares a level, and the batch is consumed once
                // after all of its arrivals are processed.
                let Some(level) = env.payload.first().map(|t| t.level.min(63)) else {
                    return;
                };
                for task in env.payload {
                    self.handle_arrival(specs, visited, queue, task);
                }
                self.gate.consumed(level);
            }
            NetMsg::Ack { seq, checksum } => {
                if self
                    .pending
                    .get(&seq)
                    .is_some_and(|p| p.env.checksum() == checksum)
                {
                    self.pending.remove(&seq);
                }
            }
        }
    }

    /// Retransmits due unacked envelopes; returns `true` if any fired.
    fn drive_retries(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let now = Instant::now();
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.due <= now)
            .map(|(seq, _)| *seq)
            .collect();
        if due.is_empty() {
            return false;
        }
        for seq in due {
            let Some(mut p) = self.pending.remove(&seq) else {
                continue;
            };
            if self.retry.exhausted(p.attempts) {
                self.report_error(CoreError::WorkerFailed {
                    cluster: self.cluster,
                    cause: format!(
                        "marker batch to cluster {} unacknowledged after {} retransmissions",
                        p.dest.index(),
                        p.attempts
                    ),
                });
                // Release the held token so the phase can close; the
                // typed error above fails the run.
                self.gate.consumed(p.level);
            } else {
                // Retransmission is work: flag the PE busy so the barrier
                // watchdog sees live recovery activity, not dead air.
                self.gate.enter_busy();
                let owner = self.owners[p.dest.index()].load(Ordering::Acquire);
                self.fabric.send_faulty(
                    self.id(),
                    ClusterId(owner as u8),
                    NetMsg::Marker(p.env.clone()),
                );
                self.tracer
                    .msg_retry(self.cluster as u16, owner as u16, self.tracer.wall_stamp());
                if let Some(inj) = &self.injector {
                    inj.note_retry();
                }
                p.attempts += 1;
                p.due = Instant::now() + self.retry.backoff(p.attempts);
                self.pending.insert(seq, p);
                self.gate.exit_busy();
            }
        }
        true
    }

    fn handle_arrival(
        &mut self,
        specs: &[PropSpec],
        visited: &mut VisitedMap,
        queue: &mut ReadyQueue<PropTask>,
        task: PropTask,
    ) {
        let spec = &specs[task.prop];
        let Some(region) = self.region_for(task.node) else {
            // A marker for a region this worker no longer holds (it
            // moved in a recovery): stale, and safely dropped — replay
            // re-derives it at the new owner.
            return;
        };
        let expand = match apply_arrival(
            region,
            visited,
            spec.target,
            task.prop,
            task.state,
            task.node,
            task.value,
            task.origin,
        ) {
            Ok(expand) => expand,
            Err(e) => {
                self.report_error(e);
                return;
            }
        };
        if self.tracer.is_enabled() {
            // Attribute the activation to the region's home cluster (as
            // the other engines do), not to an adopting worker.
            self.tracer
                .activation(self.map.cluster_of(task.node).index() as u16);
        }
        if expand {
            self.gate.created(task.level.min(63));
            queue.push(task);
        }
    }

    fn expand_task(
        &mut self,
        specs: &[PropSpec],
        net: &SemanticNetwork,
        visited: &mut VisitedMap,
        queue: &mut ReadyQueue<PropTask>,
        task: &PropTask,
    ) {
        self.steps += 1;
        self.tracer.expansion(self.cluster as u16);
        if let Some(inj) = &self.injector {
            if inj.should_panic(self.cluster as u8, self.steps as usize) {
                self.tracer.fault(
                    self.cluster as u16,
                    FaultKind::Panic,
                    self.tracer.wall_stamp(),
                );
                panic!(
                    "injected fault-plan panic: cluster {} at step {}",
                    self.cluster, self.steps
                );
            }
            let ns = inj.stall_ns(self.cluster as u8, self.steps);
            if ns > 0 {
                self.tracer.fault(
                    self.cluster as u16,
                    FaultKind::Stall,
                    self.tracer.wall_stamp(),
                );
                spin_for(Duration::from_nanos(ns));
            }
        }
        let spec = &specs[task.prop];
        let mut arrivals = std::mem::take(&mut self.arrivals);
        expand_into(net, &spec.rule, spec.func, task, &mut arrivals);
        maybe_plant_bug(&self.picker, &mut arrivals);
        if task.level >= self.max_hops {
            self.arrivals = arrivals;
            return;
        }
        // Local arrivals are applied immediately; off-cluster arrivals
        // are coalesced per destination cluster into one envelope each —
        // a single checksum, ack/retry slot, and barrier token covers
        // the whole batch. Staging is indexed by destination cluster
        // (O(1) routing); `batch_order` preserves first-touch order so
        // envelope sequence numbers are assigned as before.
        debug_assert!(self.batch_order.is_empty());
        for arrival in &arrivals {
            let next = PropTask {
                prop: task.prop,
                node: arrival.node,
                state: arrival.state,
                value: arrival.value,
                origin: task.origin,
                level: task.level + 1,
            };
            let dest = self.map.cluster_of(arrival.node);
            let owner = self.owners[dest.index()].load(Ordering::Acquire);
            if owner == self.cluster {
                self.handle_arrival(specs, visited, queue, next);
            } else {
                let buf = &mut self.batch_bufs[dest.index()];
                if buf.is_empty() {
                    self.batch_order.push(dest);
                }
                buf.push(next);
            }
        }
        self.arrivals = arrivals;
        let level = (task.level + 1).min(63);
        for i in 0..self.batch_order.len() {
            let dest = self.batch_order[i];
            let batch = std::mem::take(&mut self.batch_bufs[dest.index()]);
            let owner = self.owners[dest.index()].load(Ordering::Acquire);
            self.gate.created(level);
            self.tasks_sent
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            if self.tracer.is_enabled() {
                let hops = self.fabric.topology().distance(self.id(), dest);
                self.tracer.msg_send(
                    self.cluster as u16,
                    owner as u16,
                    hops.min(u8::MAX as usize) as u8,
                    self.tracer.wall_stamp(),
                );
            }
            let env = Envelope::seal(self.epoch, self.cluster as u8, self.next_seq, batch);
            self.next_seq += 1;
            if self.resilient() {
                self.pending.insert(
                    env.seq,
                    PendingSend {
                        env: env.clone(),
                        dest,
                        level,
                        attempts: 0,
                        due: Instant::now() + self.retry.backoff(0),
                    },
                );
                self.fabric
                    .send_faulty(self.id(), ClusterId(owner as u8), NetMsg::Marker(env));
            } else {
                self.fabric
                    .send(self.id(), ClusterId(owner as u8), NetMsg::Marker(env));
            }
        }
        self.batch_order.clear();
    }
}

/// Busy-waits for sub-millisecond injected stalls (`thread::sleep` is
/// too coarse at ns granularity).
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::engine::des;
    use snap_fault::FaultPlan;
    use snap_isa::{CombineFunc, PropRule, StepFunc};
    use snap_kb::{Marker, NetworkConfig, RelationType};

    fn grid_network(n: usize) -> SemanticNetwork {
        // A chain with extra skip links to create cross-cluster traffic.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..n {
            net.add_node(Color((i % 5) as u8)).unwrap();
        }
        for i in 0..n - 1 {
            net.add_link(NodeId(i as u32), RelationType(1), 1.0, NodeId(i as u32 + 1))
                .unwrap();
        }
        for i in 0..n - 7 {
            net.add_link(NodeId(i as u32), RelationType(2), 2.0, NodeId(i as u32 + 7))
                .unwrap();
        }
        net
    }

    fn workload() -> Program {
        Program::builder()
            .search_color(Color(0), Marker::binary(1), 0.0)
            .search_color(Color(2), Marker::binary(2), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(3),
                PropRule::Union(RelationType(1), RelationType(2)),
                StepFunc::AddWeight,
            )
            .propagate(
                Marker::binary(2),
                Marker::complex(4),
                PropRule::Star(RelationType(1)),
                StepFunc::AddWeight,
            )
            .and_marker(
                Marker::complex(3),
                Marker::complex(4),
                Marker::complex(5),
                CombineFunc::Min,
            )
            .func_marker(Marker::complex(5), snap_isa::ValueFunc::Scale(2.0))
            .collect_marker(Marker::complex(5))
            .collect_color(Marker::complex(5))
            .build()
    }

    #[test]
    fn threaded_matches_des_results() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let mut net1 = grid_network(100);
        let des_report = des::run(&cfg, &CostModel::snap1(), &mut net1, &program).unwrap();
        let mut net2 = grid_network(100);
        let thr_report = run(&cfg, &mut net2, &program).unwrap();
        assert_eq!(des_report.collects.len(), thr_report.collects.len());
        for (a, b) in des_report.collects.iter().zip(&thr_report.collects) {
            assert_eq!(a.node_ids(), b.node_ids());
        }
        // Values agree too (monotone AddWeight converges identically).
        let (CollectOutput::Nodes(a), CollectOutput::Nodes(b)) =
            (&des_report.collects[0], &thr_report.collects[0])
        else {
            panic!("expected node collects");
        };
        for ((n1, v1), (n2, v2)) in a.iter().zip(b) {
            assert_eq!(n1, n2);
            let (v1, v2) = (v1.unwrap(), v2.unwrap());
            assert!(
                (v1.value - v2.value).abs() < 1e-4,
                "{n1}: {} vs {}",
                v1.value,
                v2.value
            );
        }
        assert!(thr_report.wall_ns > 0);
        assert!(thr_report.traffic.total_messages > 0);
        // Batching: envelopes never outnumber the tasks they carry.
        assert!(thr_report.traffic.tasks_sent >= thr_report.traffic.total_messages);
        assert!(thr_report.faults.is_empty(), "fault-free run");
    }

    /// Regression: cluster counts the covering cube can't hit exactly
    /// (5 on a 4x2 cube) allocate more fabric slots than workers; every
    /// worker must still listen on its own cluster's receiver, or
    /// cross-cluster markers strand and the barrier watchdog fires.
    #[test]
    fn non_power_of_two_cluster_count_delivers_cross_cluster_markers() {
        let program = workload();
        for clusters in [5, 6, 7] {
            let mut cfg = MachineConfig::uniform(clusters, 2);
            cfg.partition = snap_kb::PartitionScheme::RoundRobin;
            let mut net1 = grid_network(100);
            let des_report = des::run(&cfg, &CostModel::snap1(), &mut net1, &program).unwrap();
            let mut net2 = grid_network(100);
            let thr_report =
                run(&cfg, &mut net2, &program).unwrap_or_else(|e| panic!("{clusters}: {e}"));
            assert!(
                thr_report.traffic.total_messages > 0,
                "{clusters} clusters produced no cross-cluster traffic"
            );
            for (a, b) in des_report.collects.iter().zip(&thr_report.collects) {
                assert_eq!(a.node_ids(), b.node_ids(), "{clusters} clusters diverged");
            }
        }
    }

    #[test]
    fn maintenance_instructions_work_threaded() {
        let mut net = grid_network(20);
        let program = Program::builder()
            .search_node(NodeId(0), Marker::binary(0), 0.0)
            .search_node(NodeId(5), Marker::binary(0), 0.0)
            .marker_create(
                Marker::binary(0),
                RelationType(9),
                NodeId(10),
                RelationType(10),
            )
            .collect_relation(Marker::binary(0), RelationType(9))
            .build();
        let cfg = MachineConfig::uniform(2, 1);
        let report = run(&cfg, &mut net, &program).unwrap();
        let CollectOutput::Links(links) = &report.collects[0] else {
            panic!("expected links");
        };
        assert_eq!(links.len(), 2);
        assert_eq!(net.links_by(NodeId(10), RelationType(10)).count(), 2);
    }

    #[test]
    fn worker_errors_propagate_to_controller() {
        let mut net = grid_network(10);
        // Marker index 70 exceeds the 64-register file.
        let program = Program::builder()
            .set_marker(Marker::binary(70), 0.0)
            .build();
        let cfg = MachineConfig::uniform(2, 1);
        assert!(run(&cfg, &mut net, &program).is_err());
    }

    #[test]
    fn single_cluster_threaded_works() {
        let mut net = grid_network(30);
        let program = workload();
        let cfg = MachineConfig::uniform(1, 2);
        let report = run(&cfg, &mut net, &program).unwrap();
        assert_eq!(report.collects.len(), 2);
        assert_eq!(report.traffic.total_messages, 0);
    }

    /// Results under each single fault class must equal the fault-free
    /// run's: the resilient protocol hides the faults.
    #[test]
    fn fault_classes_do_not_change_results() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let mut clean_net = grid_network(80);
        let clean = run(&cfg, &mut clean_net, &program).unwrap();
        let plans = [
            ("drops", FaultPlan::seeded(21).drops(0.25)),
            ("dups", FaultPlan::seeded(22).duplicates(0.25)),
            ("delays", FaultPlan::seeded(23).delays(0.3, 2_000_000)),
            ("corruptions", FaultPlan::seeded(24).corruptions(0.25)),
            ("stalls", FaultPlan::seeded(25).stalls(0.2, 50_000)),
        ];
        for (name, plan) in plans {
            let mut cfg = cfg.clone();
            cfg.fault_plan = Some(plan);
            let mut net = grid_network(80);
            let report = run(&cfg, &mut net, &program).unwrap_or_else(|e| panic!("{name}: {e}"));
            for (a, b) in clean.collects.iter().zip(&report.collects) {
                assert_eq!(a.node_ids(), b.node_ids(), "{name} changed results");
            }
            assert!(
                report.faults.total_injected() > 0,
                "{name} injected nothing"
            );
        }
    }

    #[test]
    fn drops_force_retries_and_report_them() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        cfg.fault_plan = Some(FaultPlan::seeded(31).drops(0.3));
        let mut net = grid_network(80);
        let report = run(&cfg, &mut net, &program).unwrap();
        assert!(report.faults.injected_drops > 0);
        // Every dropped *marker* forces at least one retransmission
        // (dropped acks may resolve without one if the phase ends first).
        assert!(report.faults.retries > 0);
    }

    #[test]
    fn corruption_is_detected_and_survived() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        cfg.fault_plan = Some(FaultPlan::seeded(32).corruptions(0.4));
        let mut net = grid_network(80);
        let report = run(&cfg, &mut net, &program).unwrap();
        assert!(report.faults.injected_corruptions > 0);
        assert!(report.faults.detected_corruptions > 0);
    }

    #[test]
    fn down_link_fails_typed_not_hung() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        // Every link out of every cluster to cluster 2 is down: traffic
        // to it can never arrive, so retries must exhaust into a typed
        // error rather than hanging the barrier.
        cfg.fault_plan = Some(
            FaultPlan::seeded(33)
                .link_down(0, 2)
                .link_down(1, 2)
                .link_down(3, 2),
        );
        let mut net = grid_network(60);
        let err = run(&cfg, &mut net, &program).unwrap_err();
        match err {
            CoreError::WorkerFailed { cause, .. } => {
                assert!(
                    cause.contains("unacknowledged"),
                    "unexpected cause: {cause}"
                )
            }
            other => panic!("expected WorkerFailed, got {other}"),
        }
    }

    #[test]
    fn worker_panic_recovers_with_identical_results() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let mut clean_net = grid_network(80);
        let clean = run(&cfg, &mut clean_net, &program).unwrap();
        cfg.fault_plan = Some(FaultPlan::seeded(34).worker_panic(2, 5));
        let mut net = grid_network(80);
        let report = run(&cfg, &mut net, &program).unwrap();
        assert_eq!(report.faults.injected_panics, 1);
        assert_eq!(report.faults.recovered_workers, 1);
        assert!(report.faults.remapped_regions >= 1);
        assert!(report.faults.replays >= 1);
        for (a, b) in clean.collects.iter().zip(&report.collects) {
            assert_eq!(a.node_ids(), b.node_ids(), "recovery changed results");
        }
    }
}
