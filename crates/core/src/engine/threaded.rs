//! The threaded parallel engine: one real thread per cluster.
//!
//! Cluster threads own their regions and exchange marker messages
//! through the [`snap_net::Fabric`]; the controller (the calling thread)
//! broadcasts commands over channels, overlaps independent propagations,
//! and closes each propagation group with the tiered barrier
//! ([`snap_sync::TieredBarrier`]) — the same protocol the hardware
//! implements with its AND-tree and counter network. Logical results are
//! identical to the other engines; timing is wall-clock.

use crate::config::MachineConfig;
use crate::controller::{plan, PropSpec, Step};
use crate::error::CoreError;
use crate::propagate::{expand, PropTask, VisitedMap};
use crate::region::{Region, RegionMap};
use crate::report::{CollectOutput, RunReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use snap_isa::{InstrClass, Instruction, Program};
use snap_kb::{ClusterId, Color, Link, MarkerValue, NodeId, SemanticNetwork};
use snap_net::{Fabric, HypercubeTopology};
use snap_sync::TieredBarrier;
use std::sync::Arc;
use std::time::Instant;

/// Commands from the controller to the cluster workers.
enum Cmd {
    /// Execute the local part of a non-propagate, non-collect
    /// instruction; reply `Done`.
    Global(Arc<Instruction>),
    /// Gather the local part of a retrieval; reply with the part.
    Collect(Arc<Instruction>),
    /// Report the nodes where a marker is active (marker-node
    /// maintenance support); reply `Active`.
    ActiveNodes(snap_kb::Marker),
    /// Enter propagation mode for these overlapped specs.
    Prop(Arc<Vec<PropSpec>>),
    /// Leave propagation mode (sent after the barrier completes).
    PhaseEnd,
    /// Stop the worker.
    Shutdown,
}

/// Replies from workers to the controller.
enum Reply {
    Done,
    Nodes(Vec<(NodeId, Option<MarkerValue>)>),
    Links(Vec<(NodeId, Link)>),
    Colors(Vec<(NodeId, Color)>),
    Active(Vec<NodeId>),
}

/// Executes `program` on real threads.
pub(crate) fn run(
    config: &MachineConfig,
    network: &mut SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    config.validate();
    let started = Instant::now();
    let map = RegionMap::build(network, config.clusters, config.partition);
    let topology = HypercubeTopology::covering(config.clusters);
    let (fabric, mut fabric_rxs) = Fabric::<PropTask>::new(topology);
    let barrier = TieredBarrier::new();
    let net = RwLock::new(network);
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(config.clusters);
    let mut cmd_rxs: Vec<Receiver<Cmd>> = Vec::with_capacity(config.clusters);
    for _ in 0..config.clusters {
        let (tx, rx) = unbounded();
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }

    let mut report = RunReport::default();
    let steps = plan(program);

    std::thread::scope(|scope| -> Result<(), CoreError> {
        // Spawn one worker per cluster.
        for c in (0..config.clusters).rev() {
            let region = Region::new(ClusterId(c as u8), Arc::clone(&map), *net.read());
            let worker = Worker {
                cluster: c,
                max_hops: config.max_hops,
                region,
                map: Arc::clone(&map),
                cmd_rx: cmd_rxs.pop().expect("one rx per cluster"),
                reply_tx: reply_tx.clone(),
                fabric: fabric.clone(),
                fabric_rx: fabric_rxs.pop().expect("one fabric rx per cluster"),
                barrier: Arc::clone(&barrier),
                net: &net,
                first_error: &first_error,
            };
            scope.spawn(move || worker.run());
        }
        drop(reply_tx);

        let mut msgs_before_phase = 0u64;
        let result = (|| -> Result<(), CoreError> {
            for step in &steps {
                match step {
                    Step::Instr(idx) => {
                        let instr = &program.instructions()[*idx];
                        let t0 = Instant::now();
                        exec_instr(
                            instr,
                            &cmd_txs,
                            &reply_rx,
                            &net,
                            &mut report,
                            config.clusters,
                        )?;
                        check_error(&first_error)?;
                        report.record(instr.class(), t0.elapsed().as_nanos() as u64);
                    }
                    Step::Group(indices) => {
                        let t0 = Instant::now();
                        let specs: Arc<Vec<PropSpec>> = Arc::new(
                            indices
                                .iter()
                                .enumerate()
                                .map(|(g, &idx)| {
                                    PropSpec::compile(g, &program.instructions()[idx])
                                })
                                .collect(),
                        );
                        // One phase token per worker prevents completion
                        // before every cluster has seeded its sources.
                        for tx in &cmd_txs {
                            barrier.created(0);
                            tx.send(Cmd::Prop(Arc::clone(&specs)))
                                .expect("worker alive");
                        }
                        barrier.wait_complete();
                        for tx in &cmd_txs {
                            tx.send(Cmd::PhaseEnd).expect("worker alive");
                        }
                        wait_done(&reply_rx, config.clusters);
                        check_error(&first_error)?;
                        report.barriers += 1;
                        let now_msgs = fabric.messages();
                        report
                            .traffic
                            .messages_per_sync
                            .push(now_msgs - msgs_before_phase);
                        msgs_before_phase = now_msgs;
                        let ns = t0.elapsed().as_nanos() as u64;
                        for _ in indices {
                            report.record(InstrClass::Propagate, ns / indices.len() as u64);
                        }
                    }
                }
            }
            Ok(())
        })();
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        result
    })?;

    report.traffic.total_messages = fabric.messages();
    report.traffic.total_hops = fabric.hops();
    report.wall_ns = started.elapsed().as_nanos();
    Ok(report)
}

fn check_error(slot: &Mutex<Option<CoreError>>) -> Result<(), CoreError> {
    match slot.lock().take() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn wait_done(reply_rx: &Receiver<Reply>, clusters: usize) {
    let mut done = 0;
    while done < clusters {
        if let Ok(Reply::Done) = reply_rx.recv() {
            done += 1;
        }
    }
}

/// Controller-side execution of one non-propagate instruction.
fn exec_instr(
    instr: &Instruction,
    cmd_txs: &[Sender<Cmd>],
    reply_rx: &Receiver<Reply>,
    net: &RwLock<&mut SemanticNetwork>,
    report: &mut RunReport,
    clusters: usize,
) -> Result<(), CoreError> {
    match instr.class() {
        InstrClass::Maintenance => exec_maintenance(instr, cmd_txs, reply_rx, net, clusters),
        InstrClass::Collect => {
            let shared = Arc::new(instr.clone());
            for tx in cmd_txs {
                tx.send(Cmd::Collect(Arc::clone(&shared))).expect("worker alive");
            }
            let mut nodes = Vec::new();
            let mut links = Vec::new();
            let mut colors = Vec::new();
            for _ in 0..clusters {
                match reply_rx.recv().expect("workers alive") {
                    Reply::Nodes(mut v) => nodes.append(&mut v),
                    Reply::Links(mut v) => links.append(&mut v),
                    Reply::Colors(mut v) => colors.append(&mut v),
                    _ => {}
                }
            }
            let out = match instr {
                Instruction::CollectMarker { .. } => {
                    nodes.sort_by_key(|(n, _)| *n);
                    CollectOutput::Nodes(nodes)
                }
                Instruction::CollectRelation { .. } => {
                    links.sort_by_key(|(n, l)| (*n, l.destination));
                    CollectOutput::Links(links)
                }
                _ => {
                    colors.sort_by_key(|(n, _)| *n);
                    CollectOutput::Colors(colors)
                }
            };
            report.collects.push(out);
            Ok(())
        }
        InstrClass::Barrier => {
            report.barriers += 1;
            report.traffic.messages_per_sync.push(0);
            Ok(())
        }
        _ => {
            let shared = Arc::new(instr.clone());
            for tx in cmd_txs {
                tx.send(Cmd::Global(Arc::clone(&shared))).expect("worker alive");
            }
            wait_done(reply_rx, clusters);
            Ok(())
        }
    }
}

/// Node/marker maintenance runs on the controller while the array is
/// quiescent (the paper's "housekeeping when the pipeline is empty").
fn exec_maintenance(
    instr: &Instruction,
    cmd_txs: &[Sender<Cmd>],
    reply_rx: &Receiver<Reply>,
    net: &RwLock<&mut SemanticNetwork>,
    clusters: usize,
) -> Result<(), CoreError> {
    let marked = |marker: snap_kb::Marker| -> Vec<NodeId> {
        for tx in cmd_txs {
            tx.send(Cmd::ActiveNodes(marker)).expect("worker alive");
        }
        let mut nodes = Vec::new();
        for _ in 0..clusters {
            if let Ok(Reply::Active(mut v)) = reply_rx.recv() {
                nodes.append(&mut v);
            }
        }
        nodes.sort_unstable();
        nodes
    };
    let mut guard = net.write();
    match instr {
        Instruction::Create {
            source,
            relation,
            weight,
            destination,
        } => guard.add_link(*source, *relation, *weight, *destination)?,
        Instruction::Delete {
            source,
            relation,
            destination,
        } => guard.remove_link(*source, *relation, *destination)?,
        Instruction::SetColor { node, color } => guard.set_color(*node, *color)?,
        Instruction::MarkerCreate {
            marker,
            forward,
            end,
            reverse,
        } => {
            drop(guard);
            let nodes = marked(*marker);
            let mut guard = net.write();
            for n in nodes {
                guard.add_link(n, *forward, 0.0, *end)?;
                guard.add_link(*end, *reverse, 0.0, n)?;
            }
        }
        Instruction::MarkerDelete {
            marker,
            forward,
            end,
            reverse,
        } => {
            drop(guard);
            let nodes = marked(*marker);
            let mut guard = net.write();
            for n in nodes {
                guard.remove_link(n, *forward, *end)?;
                guard.remove_link(*end, *reverse, n)?;
            }
        }
        Instruction::MarkerSetColor { marker, color } => {
            drop(guard);
            let nodes = marked(*marker);
            let mut guard = net.write();
            for n in nodes {
                guard.set_color(n, *color)?;
            }
        }
        _ => unreachable!("not a maintenance instruction"),
    }
    Ok(())
}

/// One cluster's worker thread.
struct Worker<'env, 'net> {
    cluster: usize,
    max_hops: u8,
    region: Region,
    map: Arc<RegionMap>,
    cmd_rx: Receiver<Cmd>,
    reply_tx: Sender<Reply>,
    fabric: Fabric<PropTask>,
    fabric_rx: Receiver<PropTask>,
    barrier: Arc<TieredBarrier>,
    net: &'env RwLock<&'net mut SemanticNetwork>,
    first_error: &'env Mutex<Option<CoreError>>,
}

impl Worker<'_, '_> {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Cmd::Shutdown => return,
                Cmd::Global(instr) => {
                    if let Err(e) = self.exec_local(&instr) {
                        self.report_error(e);
                    }
                    let _ = self.reply_tx.send(Reply::Done);
                }
                Cmd::Collect(instr) => {
                    let reply = {
                        let guard = self.net.read();
                        match &*instr {
                            Instruction::CollectMarker { marker } => {
                                Reply::Nodes(self.region.collect_marker(*marker))
                            }
                            Instruction::CollectRelation { marker, relation } => Reply::Links(
                                self.region.collect_relation(&guard, *marker, *relation),
                            ),
                            Instruction::CollectColor { marker } => Reply::Colors(
                                self.region.collect_color(&guard, *marker),
                            ),
                            _ => Reply::Done,
                        }
                    };
                    let _ = self.reply_tx.send(reply);
                }
                Cmd::ActiveNodes(marker) => {
                    let _ = self
                        .reply_tx
                        .send(Reply::Active(self.region.active_nodes(marker)));
                }
                Cmd::Prop(specs) => {
                    self.propagation_phase(&specs);
                    let _ = self.reply_tx.send(Reply::Done);
                }
                Cmd::PhaseEnd => {}
            }
        }
    }

    fn report_error(&self, e: CoreError) {
        self.first_error.lock().get_or_insert(e);
    }

    fn exec_local(&mut self, instr: &Instruction) -> Result<(), CoreError> {
        match instr {
            Instruction::SearchNode {
                node,
                marker,
                value,
            } => {
                self.region.search_node(*node, *marker, *value)?;
            }
            Instruction::SearchRelation {
                relation,
                marker,
                value,
            } => {
                let guard = self.net.read();
                self.region.search_relation(&guard, *relation, *marker, *value)?;
            }
            Instruction::SearchColor {
                color,
                marker,
                value,
            } => {
                let guard = self.net.read();
                self.region.search_color(&guard, *color, *marker, *value)?;
            }
            Instruction::AndMarker {
                a,
                b,
                target,
                combine,
            } => {
                self.region.bool_op(true, *a, *b, *target, *combine)?;
            }
            Instruction::OrMarker {
                a,
                b,
                target,
                combine,
            } => {
                self.region.bool_op(false, *a, *b, *target, *combine)?;
            }
            Instruction::NotMarker { source, target } => {
                self.region.not_op(*source, *target)?;
            }
            Instruction::SetMarker { marker, value } => {
                self.region.set_marker(*marker, *value)?;
            }
            Instruction::ClearMarker { marker } => {
                self.region.clear_marker(*marker)?;
            }
            Instruction::FuncMarker { marker, func } => {
                self.region.func_marker(*marker, *func)?;
            }
            _ => {}
        }
        Ok(())
    }

    /// MIMD propagation under local control, with tiered accounting:
    /// every task/message is counted created before it becomes visible
    /// and consumed after it is fully processed.
    fn propagation_phase(&mut self, specs: &[PropSpec]) {
        let mut visited = VisitedMap::new();
        let mut queue: std::collections::VecDeque<PropTask> = Default::default();

        // Seed local sources, then consume the controller's phase token.
        self.barrier.enter_busy();
        for spec in specs {
            for node in self.region.active_nodes(spec.source) {
                let value = self.region.source_value(spec.source, node);
                if visited.should_expand(spec.prop, 0, node, value, node) {
                    self.barrier.created(0);
                    queue.push_back(PropTask {
                        prop: spec.prop,
                        node,
                        state: 0,
                        value,
                        origin: node,
                        level: 0,
                    });
                }
            }
        }
        self.barrier.consumed(0);
        self.barrier.exit_busy();

        loop {
            // Remote arrivals first, then local work.
            if let Ok(task) = self.fabric_rx.try_recv() {
                self.barrier.enter_busy();
                let level = task.level;
                self.handle_arrival(specs, &mut visited, &mut queue, task);
                self.barrier.consumed(level.min(63));
                self.barrier.exit_busy();
                continue;
            }
            if let Some(task) = queue.pop_front() {
                self.barrier.enter_busy();
                self.expand_task(specs, &mut visited, &mut queue, &task);
                self.barrier.consumed(task.level.min(63));
                self.barrier.exit_busy();
                continue;
            }
            match self.cmd_rx.try_recv() {
                Ok(Cmd::PhaseEnd) => return,
                Ok(Cmd::Shutdown) => return,
                _ => std::thread::yield_now(),
            }
        }
    }

    fn handle_arrival(
        &mut self,
        specs: &[PropSpec],
        visited: &mut VisitedMap,
        queue: &mut std::collections::VecDeque<PropTask>,
        task: PropTask,
    ) {
        let spec = &specs[task.prop];
        if let Err(e) = self
            .region
            .arrive(spec.target, task.node, task.value, task.origin)
        {
            self.report_error(e);
            return;
        }
        if visited.should_expand(task.prop, task.state, task.node, task.value, task.origin) {
            self.barrier.created(task.level.min(63));
            queue.push_back(task);
        }
    }

    fn expand_task(
        &mut self,
        specs: &[PropSpec],
        visited: &mut VisitedMap,
        queue: &mut std::collections::VecDeque<PropTask>,
        task: &PropTask,
    ) {
        let spec = &specs[task.prop];
        let expansion = {
            let guard = self.net.read();
            expand(&guard, &spec.rule, spec.func, task)
        };
        if task.level >= self.max_hops {
            return;
        }
        for arrival in expansion.arrivals {
            let next = PropTask {
                prop: task.prop,
                node: arrival.node,
                state: arrival.state,
                value: arrival.value,
                origin: task.origin,
                level: task.level + 1,
            };
            let dest = self.map.cluster_of(arrival.node);
            if dest.index() == self.cluster {
                self.handle_arrival(specs, visited, queue, next);
            } else {
                self.barrier.created(next.level.min(63));
                self.fabric
                    .send(ClusterId(self.cluster as u8), dest, next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::engine::des;
    use snap_isa::{CombineFunc, PropRule, StepFunc};
    use snap_kb::{Marker, NetworkConfig, RelationType};

    fn grid_network(n: usize) -> SemanticNetwork {
        // A chain with extra skip links to create cross-cluster traffic.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..n {
            net.add_node(Color((i % 5) as u8)).unwrap();
        }
        for i in 0..n - 1 {
            net.add_link(NodeId(i as u32), RelationType(1), 1.0, NodeId(i as u32 + 1))
                .unwrap();
        }
        for i in 0..n - 7 {
            net.add_link(NodeId(i as u32), RelationType(2), 2.0, NodeId(i as u32 + 7))
                .unwrap();
        }
        net
    }

    fn workload() -> Program {
        Program::builder()
            .search_color(Color(0), Marker::binary(1), 0.0)
            .search_color(Color(2), Marker::binary(2), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(3),
                PropRule::Union(RelationType(1), RelationType(2)),
                StepFunc::AddWeight,
            )
            .propagate(
                Marker::binary(2),
                Marker::complex(4),
                PropRule::Star(RelationType(1)),
                StepFunc::AddWeight,
            )
            .and_marker(
                Marker::complex(3),
                Marker::complex(4),
                Marker::complex(5),
                CombineFunc::Min,
            )
            .func_marker(Marker::complex(5), snap_isa::ValueFunc::Scale(2.0))
            .collect_marker(Marker::complex(5))
            .collect_color(Marker::complex(5))
            .build()
    }

    #[test]
    fn threaded_matches_des_results() {
        let program = workload();
        let mut cfg = MachineConfig::uniform(4, 2);
        cfg.partition = snap_kb::PartitionScheme::RoundRobin;
        let mut net1 = grid_network(100);
        let des_report = des::run(&cfg, &CostModel::snap1(), &mut net1, &program).unwrap();
        let mut net2 = grid_network(100);
        let thr_report = run(&cfg, &mut net2, &program).unwrap();
        assert_eq!(des_report.collects.len(), thr_report.collects.len());
        for (a, b) in des_report.collects.iter().zip(&thr_report.collects) {
            assert_eq!(a.node_ids(), b.node_ids());
        }
        // Values agree too (monotone AddWeight converges identically).
        let (CollectOutput::Nodes(a), CollectOutput::Nodes(b)) =
            (&des_report.collects[0], &thr_report.collects[0])
        else {
            panic!("expected node collects");
        };
        for ((n1, v1), (n2, v2)) in a.iter().zip(b) {
            assert_eq!(n1, n2);
            let (v1, v2) = (v1.unwrap(), v2.unwrap());
            assert!((v1.value - v2.value).abs() < 1e-4, "{n1}: {} vs {}", v1.value, v2.value);
        }
        assert!(thr_report.wall_ns > 0);
        assert!(thr_report.traffic.total_messages > 0);
    }

    #[test]
    fn maintenance_instructions_work_threaded() {
        let mut net = grid_network(20);
        let program = Program::builder()
            .search_node(NodeId(0), Marker::binary(0), 0.0)
            .search_node(NodeId(5), Marker::binary(0), 0.0)
            .marker_create(Marker::binary(0), RelationType(9), NodeId(10), RelationType(10))
            .collect_relation(Marker::binary(0), RelationType(9))
            .build();
        let cfg = MachineConfig::uniform(2, 1);
        let report = run(&cfg, &mut net, &program).unwrap();
        let CollectOutput::Links(links) = &report.collects[0] else {
            panic!("expected links");
        };
        assert_eq!(links.len(), 2);
        assert_eq!(net.links_by(NodeId(10), RelationType(10)).count(), 2);
    }

    #[test]
    fn worker_errors_propagate_to_controller() {
        let mut net = grid_network(10);
        // Marker index 70 exceeds the 64-register file.
        let program = Program::builder()
            .set_marker(Marker::binary(70), 0.0)
            .build();
        let cfg = MachineConfig::uniform(2, 1);
        assert!(run(&cfg, &mut net, &program).is_err());
    }

    #[test]
    fn single_cluster_threaded_works() {
        let mut net = grid_network(30);
        let program = workload();
        let cfg = MachineConfig::uniform(1, 2);
        let report = run(&cfg, &mut net, &program).unwrap();
        assert_eq!(report.collects.len(), 2);
        assert_eq!(report.traffic.total_messages, 0);
    }
}
