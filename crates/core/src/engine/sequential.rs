//! The single-PE reference engine.
//!
//! Runs the whole knowledge base in one region on one (simulated)
//! processing element — no broadcast, no network, no overlap. It serves
//! two purposes: it is the semantics oracle the parallel engines are
//! compared against, and it produces the uniprocessor instruction
//! profile of Fig. 6 (instruction frequency vs execution time measured
//! "for NLU applications on a single processor").

use crate::config::{KernelStrategy, MachineConfig};
use crate::controller::{plan, PropSpec, Step};
use crate::cost::CostModel;
use crate::engine::common::{exec_single, exec_single_shared, phase_of, SingleOutcome};
use crate::engine::sched::{
    apply_arrival, maybe_plant_bug, resolve_kernel, Picker, ReadyQueue, CONTROL_STREAM,
};
use crate::error::CoreError;
use crate::kernel::{propagate_wave, wave_supported, WaveSink};
use crate::propagate::{expand_into, PropArrival, PropTask, VisitedMap};
use crate::region::{Region, RegionMap};
use crate::report::RunReport;
use snap_isa::{InstrClass, Program};
use snap_kb::{ClusterId, PartitionScheme, SemanticNetwork};
use snap_mem::SimTime;
use snap_obs::{PhaseKind, Stamp, Tracer};
use std::sync::Arc;

/// Executes `program` sequentially, returning the measured report.
pub(crate) fn run(
    config: &MachineConfig,
    cost: &CostModel,
    network: &mut SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    network.flush_links();
    let map = RegionMap::build(network, 1, PartitionScheme::Sequential);
    let mut region = Region::new(ClusterId(0), Arc::clone(&map), network);
    let mut report = RunReport {
        partition: Some(map.partition().stats(network)),
        ..RunReport::default()
    };
    let mut now: SimTime = 0;
    let tracer = Tracer::from_config(config.trace.as_ref(), 1);
    // One decision stream for the whole run: the single PE is the only
    // scheduling consumer, so every ready-pool pick draws from it.
    let mut picker = Picker::new(config.schedule, CONTROL_STREAM);
    // One visited map for the whole run, reset per propagation: steady
    // state re-visits capacity instead of reallocating per phase.
    let mut visited = VisitedMap::with_strategy(config.visited, network.node_count());

    for step in plan(program) {
        match step {
            Step::Instr(idx) => {
                let instr = &program.instructions()[idx];
                tracer.phase_start(phase_of(instr.class()), Stamp::Sim(now));
                let regions = std::slice::from_mut(&mut region);
                let out = exec_single(instr, network, regions)?;
                let ns = instr_cost(cost, instr.class(), &out, &mut report);
                now += ns;
                tracer.phase_end(Stamp::Sim(now));
                report.record(instr.class(), ns);
                if let Some(c) = out.collect {
                    report.collects.push(c);
                }
            }
            Step::Group(indices) => {
                // A single PE cannot overlap propagations: run them in order.
                tracer.phase_start(PhaseKind::Propagate, Stamp::Sim(now));
                for (g, &idx) in indices.iter().enumerate() {
                    let instr = &program.instructions()[idx];
                    let spec = PropSpec::compile(g, instr);
                    let ns = run_propagate(
                        config,
                        cost,
                        network,
                        &mut region,
                        &spec,
                        &mut report,
                        &tracer,
                        &mut picker,
                        &mut visited,
                    )?;
                    now += ns;
                    report.record(InstrClass::Propagate, ns);
                }
                tracer.phase_end(Stamp::Sim(now));
                // Implicit barrier closing the group (trivial on one PE).
                tracer.phase_start(PhaseKind::Barrier, Stamp::Sim(now));
                now += cost.sync_base_ns;
                tracer.barrier_wait(0, cost.sync_base_ns, Stamp::Sim(now));
                tracer.phase_end(Stamp::Sim(now));
                report.overhead.sync_ns += cost.sync_base_ns;
                report.barriers += 1;
                report.traffic.messages_per_sync.push(0);
            }
        }
    }
    report.total_ns = now;
    report.trace = tracer.report();
    report.schedule_digest = picker.digest();
    Ok(report)
}

/// Shared-snapshot variant of [`run`]: identical semantics and
/// accounting over an immutably borrowed network. The facade has already
/// rejected maintenance instructions and staged links, so every
/// instruction goes through [`exec_single_shared`] and no flush is
/// needed — which is what lets many concurrent callers run against one
/// `Arc`'d network without cloning it.
pub(crate) fn run_shared(
    config: &MachineConfig,
    cost: &CostModel,
    network: &SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    let map = RegionMap::build(network, 1, PartitionScheme::Sequential);
    let mut region = Region::new(ClusterId(0), Arc::clone(&map), network);
    let mut report = RunReport {
        partition: Some(map.partition().stats(network)),
        ..RunReport::default()
    };
    let mut now: SimTime = 0;
    let tracer = Tracer::from_config(config.trace.as_ref(), 1);
    let mut picker = Picker::new(config.schedule, CONTROL_STREAM);
    let mut visited = VisitedMap::with_strategy(config.visited, network.node_count());

    for step in plan(program) {
        match step {
            Step::Instr(idx) => {
                let instr = &program.instructions()[idx];
                tracer.phase_start(phase_of(instr.class()), Stamp::Sim(now));
                let regions = std::slice::from_mut(&mut region);
                let out = exec_single_shared(instr, network, regions)?;
                let ns = instr_cost(cost, instr.class(), &out, &mut report);
                now += ns;
                tracer.phase_end(Stamp::Sim(now));
                report.record(instr.class(), ns);
                if let Some(c) = out.collect {
                    report.collects.push(c);
                }
            }
            Step::Group(indices) => {
                tracer.phase_start(PhaseKind::Propagate, Stamp::Sim(now));
                for (g, &idx) in indices.iter().enumerate() {
                    let instr = &program.instructions()[idx];
                    let spec = PropSpec::compile(g, instr);
                    let ns = run_propagate(
                        config,
                        cost,
                        network,
                        &mut region,
                        &spec,
                        &mut report,
                        &tracer,
                        &mut picker,
                        &mut visited,
                    )?;
                    now += ns;
                    report.record(InstrClass::Propagate, ns);
                }
                tracer.phase_end(Stamp::Sim(now));
                tracer.phase_start(PhaseKind::Barrier, Stamp::Sim(now));
                now += cost.sync_base_ns;
                tracer.barrier_wait(0, cost.sync_base_ns, Stamp::Sim(now));
                tracer.phase_end(Stamp::Sim(now));
                report.overhead.sync_ns += cost.sync_base_ns;
                report.barriers += 1;
                report.traffic.messages_per_sync.push(0);
            }
        }
    }
    report.total_ns = now;
    report.trace = tracer.report();
    report.schedule_digest = picker.digest();
    Ok(report)
}

/// Single-PE cost of one non-propagate instruction, with the overhead
/// and barrier side accounting (shared by [`run`] and [`run_shared`] so
/// the two entry points report identically).
fn instr_cost(
    cost: &CostModel,
    class: InstrClass,
    out: &SingleOutcome,
    report: &mut RunReport,
) -> SimTime {
    let w = out.work[0];
    cost.pcp_ns
        + match class {
            InstrClass::Search => {
                cost.pu_decode_ns
                    + w.scans as SimTime * cost.link_scan_ns
                    + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Boolean | InstrClass::SetClear => {
                cost.global_op_ns(w.words) + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Collect => {
                let ns = cost.collect_ns(1, w.items);
                report.overhead.collect_ns += ns;
                ns
            }
            InstrClass::Maintenance => {
                cost.maintenance_ns * (out.maintenance_ops.max(1) as SimTime)
            }
            InstrClass::Barrier => {
                let ns = cost.sync_base_ns;
                report.overhead.sync_ns += ns;
                report.barriers += 1;
                ns
            }
            InstrClass::Propagate => unreachable!("plan puts propagates in groups"),
        }
}

/// Breadth-first propagation with value re-relaxation (SPFA-style),
/// entirely local to the single region. Ready-task order comes from the
/// shared scheduler core: FIFO preserves the historical breadth-first
/// order exactly, a fuzzed strategy picks any ready task — which the
/// min-`(value, origin)` convergence must absorb without changing the
/// result.
#[allow(clippy::too_many_arguments)]
fn run_propagate(
    config: &MachineConfig,
    cost: &CostModel,
    network: &SemanticNetwork,
    region: &mut Region,
    spec: &PropSpec,
    report: &mut RunReport,
    tracer: &Tracer,
    picker: &mut Picker,
    visited: &mut VisitedMap,
) -> Result<SimTime, CoreError> {
    let sources = region.active_nodes(spec.source);
    report.alpha_per_propagate.push(sources.len() as u64);
    if resolve_kernel(config, config.trace.is_some()) == KernelStrategy::Bitset
        && wave_supported(network, &spec.rule)
    {
        // The bitset wave kernel: same semantics, level-synchronous
        // frontier waves over dense bit tables instead of a ready queue.
        // Asserted bit-identical to the scalar loop below by the
        // differential grid; the scalar loop stays the executable spec.
        let seeds: Vec<(snap_kb::NodeId, f32)> = sources
            .into_iter()
            .map(|node| (node, region.source_value(spec.source, node)))
            .collect();
        let mut sink = SeqWaveSink {
            cost,
            region,
            target: spec.target,
            report,
            tracer,
            ns: cost.pu_decode_ns,
        };
        propagate_wave(
            network,
            &spec.rule,
            spec.func,
            spec.prop,
            config.max_hops,
            config.pull_density,
            &seeds,
            &mut sink,
        )?;
        return Ok(sink.ns);
    }
    visited.reset();
    let mut queue: ReadyQueue<PropTask> = ReadyQueue::new();
    for node in sources {
        let value = region.source_value(spec.source, node);
        if visited.should_expand(spec.prop, 0, node, value, node) {
            queue.push(PropTask {
                prop: spec.prop,
                node,
                state: 0,
                value,
                origin: node,
                level: 0,
            });
        }
    }

    let mut ns = cost.pu_decode_ns;
    let mut arrivals: Vec<PropArrival> = Vec::new();
    while let Some(task) = queue.pop(picker) {
        let (segments, links_scanned) =
            expand_into(network, &spec.rule, spec.func, &task, &mut arrivals);
        maybe_plant_bug(picker, &mut arrivals);
        report.expansions += 1;
        tracer.expansion(0);
        ns += cost.expand_ns(segments, links_scanned, arrivals.len());
        if task.level >= config.max_hops {
            continue;
        }
        for &arrival in &arrivals {
            let expand = apply_arrival(
                region,
                visited,
                spec.target,
                spec.prop,
                arrival.state,
                arrival.node,
                arrival.value,
                task.origin,
            )?;
            report.traffic.local_activations += 1;
            tracer.activation(0);
            let level = task.level + 1;
            report.max_propagation_depth = report.max_propagation_depth.max(level);
            if expand {
                queue.push(PropTask {
                    prop: spec.prop,
                    node: arrival.node,
                    state: arrival.state,
                    value: arrival.value,
                    origin: task.origin,
                    level,
                });
            }
        }
    }
    Ok(ns)
}

/// Engine accounting behind the wave kernel: expansion and arrival
/// events mutate the same report fields, tracer events, cost-model
/// nanoseconds, and region the scalar loop touches — in the same places.
struct SeqWaveSink<'a> {
    cost: &'a CostModel,
    region: &'a mut Region,
    target: snap_kb::Marker,
    report: &'a mut RunReport,
    tracer: &'a Tracer,
    ns: SimTime,
}

impl WaveSink for SeqWaveSink<'_> {
    fn on_expand(
        &mut self,
        _task: &PropTask,
        segments: usize,
        links_scanned: usize,
        arrivals: usize,
    ) {
        self.report.expansions += 1;
        self.tracer.expansion(0);
        self.ns += self.cost.expand_ns(segments, links_scanned, arrivals);
    }

    fn on_arrival(&mut self, task: &PropTask, arrival: &PropArrival) -> Result<(), CoreError> {
        self.region
            .arrive(self.target, arrival.node, arrival.value, task.origin)?;
        self.report.traffic.local_activations += 1;
        self.tracer.activation(0);
        self.report.max_propagation_depth = self.report.max_propagation_depth.max(task.level + 1);
        Ok(())
    }
}

/// Convenience used by tests and the machine facade.
#[allow(dead_code)]
pub(crate) fn run_default(
    network: &mut SemanticNetwork,
    program: &Program,
) -> Result<RunReport, CoreError> {
    run(
        &MachineConfig::snap1_eval(),
        &CostModel::snap1(),
        network,
        program,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{CombineFunc, PropRule, StepFunc};
    use snap_kb::{Color, Marker, NetworkConfig, RelationType};

    /// The Fig. 1 / Fig. 5 miniature: lexical nodes under syntactic
    /// categories, a concept sequence with first/last elements.
    fn fig1_network() -> SemanticNetwork {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let np = Color(1);
        let vp = Color(2);
        let cs = Color(3);
        let is_a = RelationType(0);
        let first = RelationType(1);
        let last = RelationType(2);
        let we = net.add_named_node("we", np).unwrap();
        let ship = net.add_named_node("ship", np).unwrap();
        let see = net.add_named_node("see", vp).unwrap();
        let nphr = net.add_named_node("noun-phrase", np).unwrap();
        let vphr = net.add_named_node("verb-phrase", vp).unwrap();
        let seeing = net.add_named_node("seeing-event", cs).unwrap();
        net.add_link(we, is_a, 0.1, nphr).unwrap();
        net.add_link(ship, is_a, 0.2, nphr).unwrap();
        net.add_link(see, is_a, 0.1, vphr).unwrap();
        net.add_link(nphr, first, 0.5, seeing).unwrap();
        net.add_link(vphr, last, 0.5, seeing).unwrap();
        net
    }

    #[test]
    fn fig5_parse_intersects_at_concept_sequence() {
        let mut net = fig1_network();
        let is_a = RelationType(0);
        let first = RelationType(1);
        let last = RelationType(2);
        let (m1, m2, m3, m4, m5) = (
            Marker::binary(1),
            Marker::binary(2),
            Marker::complex(3),
            Marker::complex(4),
            Marker::complex(5),
        );
        let program = Program::builder()
            .search_color(Color(1), m1, 0.0) // NP words + noun-phrase
            .search_color(Color(2), m2, 0.0) // VP words + verb-phrase
            .propagate(m1, m3, PropRule::Spread(is_a, first), StepFunc::AddWeight)
            .propagate(m2, m4, PropRule::Spread(is_a, last), StepFunc::AddWeight)
            .and_marker(m3, m4, m5, CombineFunc::Add)
            .collect_marker(m5)
            .build();
        let report = run_default(&mut net, &program).unwrap();
        assert_eq!(report.collects.len(), 1);
        let ids = report.collects[0].node_ids();
        assert_eq!(ids, vec![net.lookup("seeing-event").unwrap()]);
        // Cost semantics keep the minimum-cost binding: noun-phrase and
        // verb-phrase are themselves colored sources (value 0), so the
        // cheapest paths are first(0.5) and last(0.5); AND with Add → 1.0.
        let crate::report::CollectOutput::Nodes(nodes) = &report.collects[0] else {
            panic!("expected nodes");
        };
        let v = nodes[0].1.unwrap();
        assert!((v.value - 1.0).abs() < 1e-5, "got {}", v.value);
    }

    #[test]
    fn kernel_strategies_report_identically() {
        // Scalar loop vs wave kernel in both directions: identical
        // collects and identical measured reports, instruction for
        // instruction.
        let is_a = RelationType(0);
        let first = RelationType(1);
        let last = RelationType(2);
        let (m1, m2, m3, m4, m5) = (
            Marker::binary(1),
            Marker::binary(2),
            Marker::complex(3),
            Marker::complex(4),
            Marker::complex(5),
        );
        let program = Program::builder()
            .search_color(Color(1), m1, 0.0)
            .search_color(Color(2), m2, 0.0)
            .propagate(m1, m3, PropRule::Spread(is_a, first), StepFunc::AddWeight)
            .propagate(m2, m4, PropRule::Spread(is_a, last), StepFunc::AddWeight)
            .and_marker(m3, m4, m5, CombineFunc::Add)
            .collect_marker(m5)
            .build();
        let run_with = |kernel: KernelStrategy, density: f64| {
            let mut net = fig1_network();
            let config = MachineConfig {
                kernel,
                pull_density: density,
                ..MachineConfig::snap1_eval()
            };
            run(&config, &CostModel::snap1(), &mut net, &program).unwrap()
        };
        let scalar = run_with(KernelStrategy::Scalar, 0.07);
        for (kernel, density) in [
            (KernelStrategy::Bitset, 1e9), // pure push
            (KernelStrategy::Bitset, 0.0), // pure pull
            (KernelStrategy::Auto, 0.07),
        ] {
            let wave = run_with(kernel, density);
            assert_eq!(wave.collects, scalar.collects, "{kernel:?}/{density}");
            assert_eq!(wave.expansions, scalar.expansions);
            assert_eq!(
                wave.traffic.local_activations,
                scalar.traffic.local_activations
            );
            assert_eq!(wave.max_propagation_depth, scalar.max_propagation_depth);
            assert_eq!(wave.total_ns, scalar.total_ns, "{kernel:?}/{density}");
        }
    }

    #[test]
    fn propagate_dominates_time_not_count() {
        let mut net = fig1_network();
        let is_a = RelationType(0);
        let m1 = Marker::binary(1);
        let m2 = Marker::complex(2);
        let program = Program::builder()
            .search_color(Color(1), m1, 0.0)
            .set_marker(Marker::binary(9), 0.0)
            .clear_marker(Marker::binary(9))
            .propagate(m1, m2, PropRule::Star(is_a), StepFunc::AddWeight)
            .collect_marker(m2)
            .build();
        let report = run_default(&mut net, &program).unwrap();
        assert_eq!(report.count_of(InstrClass::Propagate), 1);
        assert_eq!(report.instruction_count(), 5);
        assert!(report.time_of(InstrClass::Propagate) > 0);
        assert!(report.total_ns > 0);
    }

    #[test]
    fn alpha_and_depth_recorded() {
        let mut net = fig1_network();
        let m1 = Marker::binary(1);
        let m2 = Marker::binary(2);
        let program = Program::builder()
            .search_color(Color(1), m1, 0.0)
            .propagate(
                m1,
                m2,
                PropRule::Spread(RelationType(0), RelationType(1)),
                StepFunc::Identity,
            )
            .build();
        let report = run_default(&mut net, &program).unwrap();
        assert_eq!(report.alpha_per_propagate, vec![3]); // we, ship, noun-phrase
                                                         // `we` (the smallest origin ID) wins the equal-cost binding at
                                                         // noun-phrase and re-expands it, so the deepest recorded arrival
                                                         // is the two-link path we → noun-phrase → seeing-event.
        assert_eq!(report.max_propagation_depth, 2);
        assert!(report.expansions >= 3);
    }

    #[test]
    fn cyclic_network_terminates() {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let a = net.add_node(Color(0)).unwrap();
        let b = net.add_node(Color(0)).unwrap();
        let r = RelationType(1);
        net.add_link(a, r, 1.0, b).unwrap();
        net.add_link(b, r, 1.0, a).unwrap();
        let program = Program::builder()
            .search_node(a, Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::complex(1),
                PropRule::Star(r),
                StepFunc::AddWeight,
            )
            .collect_marker(Marker::complex(1))
            .build();
        let report = run_default(&mut net, &program).unwrap();
        let ids = report.collects[0].node_ids();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn barrier_instruction_counts() {
        let mut net = fig1_network();
        let program = Program::builder().barrier().build();
        let report = run_default(&mut net, &program).unwrap();
        assert_eq!(report.count_of(InstrClass::Barrier), 1);
        assert_eq!(report.barriers, 1);
        assert!(report.overhead.sync_ns > 0);
    }
}
