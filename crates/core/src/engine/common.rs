//! Instruction execution shared by all engines.
//!
//! [`exec_single`] applies one non-propagate instruction to the regions
//! and network, returning per-cluster work counts that each engine
//! converts to time with its own cost model. Keeping this logic in one
//! place is what guarantees the engines' logical results agree.

use crate::error::CoreError;
use crate::region::Region;
use crate::report::CollectOutput;
use snap_isa::Instruction;
use snap_kb::{Marker, NodeId, SemanticNetwork};

/// Work performed by one cluster while executing a single instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterWork {
    /// Marker-status words manipulated.
    pub words: usize,
    /// Complex-marker value slots updated.
    pub value_ops: usize,
    /// Nodes examined (search scans).
    pub scans: usize,
    /// Items produced (collect results from this cluster).
    pub items: usize,
}

/// Outcome of executing one non-propagate instruction.
#[derive(Debug, Clone, Default)]
pub struct SingleOutcome {
    /// Per-cluster work, indexed like the regions slice.
    pub work: Vec<ClusterWork>,
    /// Retrieval output, for `COLLECT-*`.
    pub collect: Option<CollectOutput>,
    /// Controller-side maintenance operations performed (link edits,
    /// recolors).
    pub maintenance_ops: usize,
}

/// Applies `instr` to `regions`/`network`.
///
/// # Errors
///
/// Returns [`CoreError`] for unknown nodes, out-of-range markers, or
/// missing links (DELETE / MARKER-DELETE).
///
/// # Panics
///
/// Panics if called with a `PROPAGATE` instruction — propagation goes
/// through each engine's phase executor.
pub fn exec_single(
    instr: &Instruction,
    network: &mut SemanticNetwork,
    regions: &mut [Region],
) -> Result<SingleOutcome, CoreError> {
    let mut out = SingleOutcome {
        work: vec![ClusterWork::default(); regions.len()],
        ..SingleOutcome::default()
    };
    match instr {
        // ----- node maintenance (controller housekeeping) -----
        Instruction::Create {
            source,
            relation,
            weight,
            destination,
        } => {
            network.add_link(*source, *relation, *weight, *destination)?;
            out.maintenance_ops = 1;
        }
        Instruction::Delete {
            source,
            relation,
            destination,
        } => {
            network.remove_link(*source, *relation, *destination)?;
            out.maintenance_ops = 1;
        }
        Instruction::SetColor { node, color } => {
            network.set_color(*node, *color)?;
            out.maintenance_ops = 1;
        }

        // ----- marker node maintenance -----
        Instruction::MarkerCreate {
            marker,
            forward,
            end,
            reverse,
        } => {
            let marked = all_active(regions, *marker);
            for node in &marked {
                network.add_link(*node, *forward, 0.0, *end)?;
                network.add_link(*end, *reverse, 0.0, *node)?;
            }
            out.maintenance_ops = marked.len() * 2;
        }
        Instruction::MarkerDelete {
            marker,
            forward,
            end,
            reverse,
        } => {
            let marked = all_active(regions, *marker);
            for node in &marked {
                network.remove_link(*node, *forward, *end)?;
                network.remove_link(*end, *reverse, *node)?;
            }
            out.maintenance_ops = marked.len() * 2;
        }
        Instruction::MarkerSetColor { marker, color } => {
            let marked = all_active(regions, *marker);
            for node in &marked {
                network.set_color(*node, *color)?;
            }
            out.maintenance_ops = marked.len();
        }

        // Everything else reads the network without mutating it.
        _ => return exec_single_shared(instr, network, regions),
    }
    // Keep the relation table's contiguous index complete so the next
    // propagation phase stays on the slice-lookup fast path.
    network.flush_links();
    Ok(out)
}

/// Applies one non-propagate, non-maintenance instruction to `regions`
/// against an immutably borrowed network — the instruction subset a
/// shared-snapshot run ([`crate::Snap1::run_shared`]) may execute.
///
/// # Errors
///
/// Returns [`CoreError::MaintenanceOnShared`] for the six
/// node-maintenance instructions, and the same errors as [`exec_single`]
/// otherwise (unknown nodes, out-of-range markers).
///
/// # Panics
///
/// Panics if called with a `PROPAGATE` instruction — propagation goes
/// through each engine's phase executor.
pub fn exec_single_shared(
    instr: &Instruction,
    network: &SemanticNetwork,
    regions: &mut [Region],
) -> Result<SingleOutcome, CoreError> {
    let mut out = SingleOutcome::default();
    exec_single_shared_into(instr, network, regions, &mut out)?;
    Ok(out)
}

/// [`exec_single_shared`] writing into a pooled [`SingleOutcome`]: the
/// work vector keeps its capacity across calls, so the steady-state
/// serving loop allocates nothing for collect-free instructions.
///
/// # Errors
///
/// Same as [`exec_single_shared`].
///
/// # Panics
///
/// Panics on `PROPAGATE`, like [`exec_single_shared`].
pub fn exec_single_shared_into(
    instr: &Instruction,
    network: &SemanticNetwork,
    regions: &mut [Region],
    out: &mut SingleOutcome,
) -> Result<(), CoreError> {
    out.work.clear();
    out.work.resize(regions.len(), ClusterWork::default());
    // A leftover collect buffer (the serving loop pre-seeds one from its
    // pooled reports) is recycled by the collect arms below; any other
    // instruction discards it.
    let spare = out.collect.take();
    out.maintenance_ops = 0;
    match instr {
        Instruction::Propagate { .. } => {
            panic!("PROPAGATE must be executed by a propagation phase")
        }

        // ----- node maintenance: would mutate the shared network -----
        Instruction::Create { .. }
        | Instruction::Delete { .. }
        | Instruction::SetColor { .. }
        | Instruction::MarkerCreate { .. }
        | Instruction::MarkerDelete { .. }
        | Instruction::MarkerSetColor { .. } => {
            return Err(CoreError::MaintenanceOnShared {
                mnemonic: instr.mnemonic(),
            });
        }

        // ----- search -----
        Instruction::SearchNode {
            node,
            marker,
            value,
        } => {
            if !network.contains(*node) {
                return Err(CoreError::Kb(snap_kb::KbError::UnknownNode(*node)));
            }
            for (c, region) in regions.iter_mut().enumerate() {
                if region.search_node(*node, *marker, *value)? {
                    out.work[c].scans = 1;
                    out.work[c].value_ops = 1;
                }
            }
        }
        Instruction::SearchRelation {
            relation,
            marker,
            value,
        } => {
            for (c, region) in regions.iter_mut().enumerate() {
                let hits = region.search_relation(network, *relation, *marker, *value)?;
                out.work[c].scans = region.len();
                out.work[c].value_ops = hits;
            }
        }
        Instruction::SearchColor {
            color,
            marker,
            value,
        } => {
            for (c, region) in regions.iter_mut().enumerate() {
                let hits = region.search_color(network, *color, *marker, *value)?;
                out.work[c].scans = region.len();
                out.work[c].value_ops = hits;
            }
        }

        // ----- boolean -----
        Instruction::AndMarker {
            a,
            b,
            target,
            combine,
        } => {
            for (c, region) in regions.iter_mut().enumerate() {
                let (words, values) = region.bool_op(true, *a, *b, *target, *combine)?;
                out.work[c].words = words;
                out.work[c].value_ops = values;
            }
        }
        Instruction::OrMarker {
            a,
            b,
            target,
            combine,
        } => {
            for (c, region) in regions.iter_mut().enumerate() {
                let (words, values) = region.bool_op(false, *a, *b, *target, *combine)?;
                out.work[c].words = words;
                out.work[c].value_ops = values;
            }
        }
        Instruction::NotMarker { source, target } => {
            for (c, region) in regions.iter_mut().enumerate() {
                out.work[c].words = region.not_op(*source, *target)?;
            }
        }

        // ----- set/clear -----
        Instruction::SetMarker { marker, value } => {
            for (c, region) in regions.iter_mut().enumerate() {
                out.work[c].words = region.set_marker(*marker, *value)?;
            }
        }
        Instruction::ClearMarker { marker } => {
            for (c, region) in regions.iter_mut().enumerate() {
                out.work[c].words = region.clear_marker(*marker)?;
            }
        }
        Instruction::FuncMarker { marker, func } => {
            for (c, region) in regions.iter_mut().enumerate() {
                let (active, _) = region.func_marker(*marker, *func)?;
                out.work[c].words = region.words();
                out.work[c].value_ops = active;
            }
        }

        // ----- retrieval -----
        Instruction::CollectMarker { marker } => {
            let mut all = match spare {
                Some(CollectOutput::Nodes(mut v)) => {
                    v.clear();
                    v
                }
                _ => Vec::new(),
            };
            for (c, region) in regions.iter().enumerate() {
                out.work[c].items = region.collect_marker_into(*marker, &mut all);
            }
            // Node IDs are unique across regions (each node lives in
            // exactly one), so the allocation-free unstable sort is
            // order-equivalent to a stable one.
            all.sort_unstable_by_key(|(n, _)| *n);
            out.collect = Some(CollectOutput::Nodes(all));
        }
        Instruction::CollectRelation { marker, relation } => {
            let mut all = match spare {
                Some(CollectOutput::Links(mut v)) => {
                    v.clear();
                    v
                }
                _ => Vec::new(),
            };
            for (c, region) in regions.iter().enumerate() {
                out.work[c].items =
                    region.collect_relation_into(network, *marker, *relation, &mut all);
            }
            // Parallel links can tie on (node, destination); the stable
            // sort preserves their CSR order.
            all.sort_by_key(|(n, l)| (*n, l.destination));
            out.collect = Some(CollectOutput::Links(all));
        }
        Instruction::CollectColor { marker } => {
            let mut all = match spare {
                Some(CollectOutput::Colors(mut v)) => {
                    v.clear();
                    v
                }
                _ => Vec::new(),
            };
            for (c, region) in regions.iter().enumerate() {
                out.work[c].items = region.collect_color_into(network, *marker, &mut all);
            }
            // Unique node keys, as for COLLECT-MARKER.
            all.sort_unstable_by_key(|(n, _)| *n);
            out.collect = Some(CollectOutput::Colors(all));
        }

        // ----- explicit barrier: no marker work -----
        Instruction::Barrier => {}
    }
    Ok(())
}

/// The trace phase an instruction class belongs to. Shared by the three
/// engines so their phase sequences line up index-for-index, which is
/// what the differential harness compares.
pub(crate) fn phase_of(class: snap_isa::InstrClass) -> snap_obs::PhaseKind {
    use snap_isa::InstrClass;
    use snap_obs::PhaseKind;
    match class {
        InstrClass::Search | InstrClass::Boolean | InstrClass::SetClear => PhaseKind::Configure,
        InstrClass::Propagate => PhaseKind::Propagate,
        InstrClass::Collect => PhaseKind::Collect,
        InstrClass::Maintenance => PhaseKind::Maintenance,
        InstrClass::Barrier => PhaseKind::Barrier,
    }
}

/// All nodes where `marker` is active, across every region, ascending.
fn all_active(regions: &[Region], marker: Marker) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = regions
        .iter()
        .flat_map(|r| r.active_nodes_iter(marker))
        .collect();
    nodes.sort_unstable();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionMap;
    use snap_isa::CombineFunc;
    use snap_kb::{ClusterId, Color, NetworkConfig, PartitionScheme, RelationType};
    use std::sync::Arc;

    fn setup(clusters: usize) -> (SemanticNetwork, Vec<Region>) {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..6 {
            net.add_named_node(format!("n{i}"), Color(i as u8 % 2))
                .unwrap();
        }
        net.add_link(NodeId(0), RelationType(1), 0.5, NodeId(1))
            .unwrap();
        let map = RegionMap::build(&net, clusters, PartitionScheme::RoundRobin);
        let regions = (0..clusters)
            .map(|c| Region::new(ClusterId(c as u8), Arc::clone(&map), &net))
            .collect();
        (net, regions)
    }

    #[test]
    fn search_node_marks_exactly_one_cluster() {
        let (mut net, mut regions) = setup(2);
        let instr = Instruction::SearchNode {
            node: NodeId(3),
            marker: Marker::binary(0),
            value: 0.0,
        };
        let out = exec_single(&instr, &mut net, &mut regions).unwrap();
        // Node 3 is odd → cluster 1 under round-robin.
        assert_eq!(out.work[0].scans, 0);
        assert_eq!(out.work[1].scans, 1);
        assert!(regions[1].test(Marker::binary(0), NodeId(3)));
    }

    #[test]
    fn search_unknown_node_errors() {
        let (mut net, mut regions) = setup(2);
        let instr = Instruction::SearchNode {
            node: NodeId(100),
            marker: Marker::binary(0),
            value: 0.0,
        };
        assert!(exec_single(&instr, &mut net, &mut regions).is_err());
    }

    #[test]
    fn boolean_runs_on_every_cluster() {
        let (mut net, mut regions) = setup(3);
        let set = Instruction::SetMarker {
            marker: Marker::binary(0),
            value: 0.0,
        };
        exec_single(&set, &mut net, &mut regions).unwrap();
        let and = Instruction::AndMarker {
            a: Marker::binary(0),
            b: Marker::binary(0),
            target: Marker::binary(1),
            combine: CombineFunc::Add,
        };
        let out = exec_single(&and, &mut net, &mut regions).unwrap();
        assert!(out.work.iter().all(|w| w.words > 0));
        let total: usize = regions.iter().map(|r| r.count(Marker::binary(1))).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn collect_merges_and_sorts_across_clusters() {
        let (mut net, mut regions) = setup(2);
        regions[1]
            .arrive(Marker::binary(0), NodeId(5), 0.0, NodeId(5))
            .unwrap();
        regions[0]
            .arrive(Marker::binary(0), NodeId(0), 0.0, NodeId(0))
            .unwrap();
        regions[1]
            .arrive(Marker::binary(0), NodeId(1), 0.0, NodeId(1))
            .unwrap();
        let instr = Instruction::CollectMarker {
            marker: Marker::binary(0),
        };
        let out = exec_single(&instr, &mut net, &mut regions).unwrap();
        let Some(CollectOutput::Nodes(nodes)) = out.collect else {
            panic!("expected node collect");
        };
        let ids: Vec<u32> = nodes.iter().map(|(n, _)| n.0).collect();
        assert_eq!(ids, vec![0, 1, 5]);
        assert_eq!(out.work[0].items, 1);
        assert_eq!(out.work[1].items, 2);
    }

    #[test]
    fn marker_create_binds_marked_nodes() {
        let (mut net, mut regions) = setup(2);
        regions[0]
            .arrive(Marker::binary(0), NodeId(2), 0.0, NodeId(2))
            .unwrap();
        regions[1]
            .arrive(Marker::binary(0), NodeId(3), 0.0, NodeId(3))
            .unwrap();
        let fwd = RelationType(10);
        let rev = RelationType(11);
        let instr = Instruction::MarkerCreate {
            marker: Marker::binary(0),
            forward: fwd,
            end: NodeId(5),
            reverse: rev,
        };
        let out = exec_single(&instr, &mut net, &mut regions).unwrap();
        assert_eq!(out.maintenance_ops, 4);
        assert_eq!(net.links_by(NodeId(2), fwd).count(), 1);
        assert_eq!(net.links_by(NodeId(5), rev).count(), 2);
        // And MARKER-DELETE undoes it.
        let del = Instruction::MarkerDelete {
            marker: Marker::binary(0),
            forward: fwd,
            end: NodeId(5),
            reverse: rev,
        };
        exec_single(&del, &mut net, &mut regions).unwrap();
        assert_eq!(net.links_by(NodeId(5), rev).count(), 0);
    }

    #[test]
    fn maintenance_edits_network() {
        let (mut net, mut regions) = setup(1);
        let create = Instruction::Create {
            source: NodeId(2),
            relation: RelationType(7),
            weight: 1.0,
            destination: NodeId(3),
        };
        exec_single(&create, &mut net, &mut regions).unwrap();
        assert_eq!(net.links_by(NodeId(2), RelationType(7)).count(), 1);
        let recolor = Instruction::SetColor {
            node: NodeId(2),
            color: Color(9),
        };
        exec_single(&recolor, &mut net, &mut regions).unwrap();
        assert_eq!(net.color(NodeId(2)).unwrap(), Color(9));
        let delete = Instruction::Delete {
            source: NodeId(2),
            relation: RelationType(7),
            destination: NodeId(3),
        };
        exec_single(&delete, &mut net, &mut regions).unwrap();
        assert_eq!(net.links_by(NodeId(2), RelationType(7)).count(), 0);
    }

    #[test]
    fn shared_exec_rejects_maintenance_with_mnemonic() {
        let (net, mut regions) = setup(1);
        let create = Instruction::Create {
            source: NodeId(2),
            relation: RelationType(7),
            weight: 1.0,
            destination: NodeId(3),
        };
        let err = exec_single_shared(&create, &net, &mut regions).unwrap_err();
        assert_eq!(
            err,
            CoreError::MaintenanceOnShared {
                mnemonic: create.mnemonic()
            }
        );
        let recolor = Instruction::MarkerSetColor {
            marker: Marker::binary(0),
            color: Color(1),
        };
        assert!(matches!(
            exec_single_shared(&recolor, &net, &mut regions),
            Err(CoreError::MaintenanceOnShared { .. })
        ));
    }

    #[test]
    fn shared_exec_matches_exec_single_on_read_only_instrs() {
        let (mut net, mut regions) = setup(2);
        let (net2, mut regions2) = setup(2);
        let instrs = [
            Instruction::SearchColor {
                color: Color(0),
                marker: Marker::binary(0),
                value: 0.0,
            },
            Instruction::NotMarker {
                source: Marker::binary(0),
                target: Marker::binary(1),
            },
            Instruction::CollectMarker {
                marker: Marker::binary(1),
            },
        ];
        for instr in &instrs {
            let a = exec_single(instr, &mut net, &mut regions).unwrap();
            let b = exec_single_shared(instr, &net2, &mut regions2).unwrap();
            assert_eq!(a.work, b.work);
            assert_eq!(format!("{:?}", a.collect), format!("{:?}", b.collect));
        }
    }

    #[test]
    #[should_panic(expected = "PROPAGATE must be executed")]
    fn propagate_rejected() {
        let (mut net, mut regions) = setup(1);
        let instr = Instruction::Propagate {
            source: Marker::binary(0),
            target: Marker::binary(1),
            rule: snap_isa::PropRule::Star(RelationType(0)),
            func: snap_isa::StepFunc::Identity,
        };
        let _ = exec_single(&instr, &mut net, &mut regions);
    }
}
