//! The bitset wave kernel: level-synchronous frontier propagation with
//! push/pull direction switching.
//!
//! The scalar loop in the sequential engine is the executable spec for
//! `PROPAGATE`: pop one task, expand it, merge its arrivals, repeat.
//! Because the FIFO schedule is level-synchronous — seeds sit at level 0
//! and every accepted arrival is requeued at `parent + 1` — the same
//! computation can be restructured into *waves*: all tasks of one level
//! expand together against dense per-state bitmaps over the node arena.
//! [`propagate_wave`] runs that restructured loop and is asserted
//! bit-identical to the scalar spec (same collects, task/arrival counts,
//! and reports) by the differential grid.
//!
//! Each wave picks a traversal direction, following the
//! direction-optimizing BFS of Beamer et al.:
//!
//! * **push** — scatter from the frontier through the CSR out-runs, one
//!   [`expand_into`] per task in wave order. This is literally the
//!   scalar loop minus the ready-queue shuffling, so even the
//!   per-arrival event order matches the spec.
//! * **pull** — when the frontier density crosses
//!   [`MachineConfig::pull_density`](crate::MachineConfig), gather into
//!   every destination through a reverse CSR built lazily on the first
//!   pull wave. Arrivals at a destination are keyed by
//!   `(wave position, link rank, arc index)` and applied in that order,
//!   so per-node merge decisions — and therefore the reached set,
//!   values, and the next wave (globally re-sorted by the same key) —
//!   are identical to the spec. Only the *interleaving* of arrival
//!   events across destinations differs, which is why
//!   `KernelStrategy::Auto` resolves to the scalar loop when a tracer
//!   needs replayable event order.
//!
//! Visited tracking lives inside the kernel as one seen-bitmap plus a
//! flat `(value, origin)` array per rule state (the propagation index is
//! fixed for a whole run): a first visit is a single bit test instead of
//! a sentinel compare behind an enum dispatch, and improvement decisions
//! replicate [`VisitedMap`](crate::propagate::VisitedMap)'s dense
//! backing exactly, including growth past the declared node count.

use crate::error::CoreError;
use crate::propagate::{expand_into, PropArrival, PropTask, MAX_MERGE_ARCS};
use snap_isa::{RuleProgram, StepFunc};
use snap_kb::{Bitmap, LanePlane, MarkerValue, NodeId, ReverseTable, SemanticNetwork};

/// Lane capacity of the bit-sliced multi-query kernel: one bit per lane
/// in a host word, so a batch can hold at most 64 fused queries. Wider
/// batches fall back to the per-lane replay path.
pub const MAX_SLICED_LANES: usize = 64;

/// Engine-side observer for a wave run.
///
/// The kernel owns task ordering and visited decisions; the sink owns
/// everything the engine accounts per event — expansion counts, cost-
/// model nanoseconds, marker merges ([`Region::arrive`]
/// (crate::Region::arrive)), traffic stats, and depth tracking. One
/// trait (rather than two closures) so a single `&mut` engine context
/// can back both callbacks.
pub trait WaveSink {
    /// One task expanded: `segments`/`links_scanned` are the relation-
    /// table cost units and `arrivals` the number of arrivals it
    /// produced. Called once per task in spec order — in both
    /// directions — including tasks at the hop cap, whose arrivals are
    /// charged but never delivered (exactly like the scalar loop).
    fn on_expand(
        &mut self,
        task: &PropTask,
        segments: usize,
        links_scanned: usize,
        arrivals: usize,
    );

    /// One arrival delivered (counted whether or not it improves the
    /// visited entry). Push waves call this in exact spec order; pull
    /// waves in per-destination spec order.
    fn on_arrival(&mut self, task: &PropTask, arrival: &PropArrival) -> Result<(), CoreError>;
}

/// What a wave run did: total waves, how many ran in the pull
/// direction, and distinct `(state, node)` sites visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveStats {
    /// Frontier waves processed (= deepest level reached + 1).
    pub waves: usize,
    /// Waves that ran in the pull (gather) direction.
    pub pull_waves: usize,
    /// Distinct `(state, node)` sites expanded, as
    /// [`VisitedMap::len`](crate::propagate::VisitedMap::len) counts
    /// them.
    pub visited: usize,
}

/// Returns `true` when [`propagate_wave`] can run this propagation:
/// the relation table must be flushed (the reverse CSR and the indexed
/// runs are blind to staged links) and every rule state mergeable
/// (at most [`MAX_RULE_STATES`](snap_isa::MAX_RULE_STATES) arcs).
/// Engines fall back to the scalar loop otherwise.
pub fn wave_supported(network: &SemanticNetwork, rule: &RuleProgram) -> bool {
    network.staged_link_count() == 0
        && rule
            .states()
            .iter()
            .all(|s| s.arcs().len() <= MAX_MERGE_ARCS)
}

/// Runs one `PROPAGATE` as level-synchronous waves with direction
/// switching, reporting every expansion and arrival to `sink`.
///
/// `seeds` are gated through the visited tables in order (duplicates
/// and non-improvements drop, exactly like the scalar seed loop) and
/// become wave 0. A wave at `max_hops` still expands — its cost is
/// charged — but delivers no arrivals. A wave whose task count reaches
/// `pull_density × node_count` runs in the pull direction (`0.0`
/// forces pull everywhere; an over-unity density like `1e9` forces
/// push).
///
/// # Errors
///
/// Propagates the first error `sink.on_arrival` returns.
///
/// # Panics
///
/// Panics unless [`wave_supported`] holds — callers must check and
/// fall back to the scalar loop.
#[allow(clippy::too_many_arguments)]
pub fn propagate_wave<S: WaveSink>(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    max_hops: u8,
    pull_density: f64,
    seeds: &[(NodeId, f32)],
    sink: &mut S,
) -> Result<WaveStats, CoreError> {
    assert!(
        wave_supported(network, rule),
        "wave kernel requires a flushed relation table and mergeable rule states"
    );
    let node_count = network.node_count();
    let mut visited = WaveVisited::new(node_count, rule.states().len());
    let mut stats = WaveStats::default();

    let mut wave: Vec<PropTask> = Vec::with_capacity(seeds.len());
    for &(node, value) in seeds {
        if visited.should_expand(0, node, value, node) {
            wave.push(PropTask {
                prop,
                node,
                state: 0,
                value,
                origin: node,
                level: 0,
            });
        }
    }

    let mut next: Vec<PropTask> = Vec::new();
    let mut arrivals: Vec<PropArrival> = Vec::new();
    // The reverse CSR and pull scratch are built on the first pull wave
    // only: sparse-everywhere runs never pay for the transpose.
    let mut pull: Option<(ReverseTable, PullScratch)> = None;

    while !wave.is_empty() {
        stats.waves += 1;
        let capped = wave[0].level >= max_hops;
        let dense =
            !capped && node_count > 0 && wave.len() as f64 >= pull_density * node_count as f64;
        if dense {
            stats.pull_waves += 1;
            let (reverse, scratch) =
                pull.get_or_insert_with(|| (network.build_reverse(), PullScratch::new(node_count)));
            pull_wave(
                network,
                rule,
                func,
                prop,
                &wave,
                reverse,
                scratch,
                &mut visited,
                sink,
                &mut next,
            )?;
        } else {
            push_wave(
                network,
                rule,
                func,
                prop,
                capped,
                &wave,
                &mut visited,
                sink,
                &mut next,
                &mut arrivals,
            )?;
        }
        std::mem::swap(&mut wave, &mut next);
        next.clear();
    }
    stats.visited = visited.visited;
    Ok(stats)
}

/// Push direction: the scalar loop restructured over one wave. Expands
/// each task in wave order and interleaves its arrivals immediately, so
/// the full event sequence matches the spec.
#[allow(clippy::too_many_arguments)]
fn push_wave<S: WaveSink>(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    capped: bool,
    wave: &[PropTask],
    visited: &mut WaveVisited,
    sink: &mut S,
    next: &mut Vec<PropTask>,
    arrivals: &mut Vec<PropArrival>,
) -> Result<(), CoreError> {
    // Single-state single-arc rules (`Star`) never change state, so the
    // arc — and the whole dispatch below — hoists out of the task loop.
    if let [state] = rule.states() {
        if let [arc] = state.arcs() {
            for task in wave {
                let (segments, fanout, run, _) =
                    network.ranked_links_with_cost(task.node, arc.relation);
                sink.on_expand(task, segments, fanout, run.len());
                if capped {
                    continue;
                }
                stream_run(task, run, arc.next, func, prop, visited, sink, next)?;
            }
            return Ok(());
        }
    }
    for task in wave {
        match rule.state(task.state).arcs() {
            // Single-arc fast path — most built-in rule states. One
            // fused row lookup yields cost units and the relation run,
            // and arrivals stream straight off the run (already in
            // insertion order, so the event sequence matches
            // expand_into's single-arc path exactly) without touching
            // the scratch buffer.
            [arc] => {
                let (segments, fanout, run, _) =
                    network.ranked_links_with_cost(task.node, arc.relation);
                sink.on_expand(task, segments, fanout, run.len());
                if capped {
                    continue;
                }
                stream_run(task, run, arc.next, func, prop, visited, sink, next)?;
            }
            // Two arcs (Spread's live state, Union): inline two-pointer
            // merge of the ranked runs in ascending `(rank, arc)` order
            // — arc 0 wins rank ties, exactly like expand_into's merge
            // cursor — again without the arrivals buffer. Nodes carrying
            // only one of the two relations (the common case in a
            // taxonomy KB) degenerate to the streaming path.
            [a0, a1] => {
                let (segments, fanout, run0, ranks0) =
                    network.ranked_links_with_cost(task.node, a0.relation);
                let (run1, ranks1) = network.ranked_links_by(task.node, a1.relation);
                sink.on_expand(task, segments, fanout, run0.len() + run1.len());
                if capped {
                    continue;
                }
                if run1.is_empty() {
                    stream_run(task, run0, a0.next, func, prop, visited, sink, next)?;
                    continue;
                }
                if run0.is_empty() {
                    stream_run(task, run1, a1.next, func, prop, visited, sink, next)?;
                    continue;
                }
                let level = task.level + 1;
                let (mut i, mut j) = (0, 0);
                loop {
                    let take0 = match (ranks0.get(i), ranks1.get(j)) {
                        (Some(&r0), Some(&r1)) => r0 <= r1,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let (link, state) = if take0 {
                        let link = &run0[i];
                        i += 1;
                        (link, a0.next)
                    } else {
                        let link = &run1[j];
                        j += 1;
                        (link, a1.next)
                    };
                    let value = func.apply(task.value, link.weight);
                    let arrival = PropArrival {
                        node: link.destination,
                        state,
                        value,
                    };
                    sink.on_arrival(task, &arrival)?;
                    if visited.should_expand(state, link.destination, value, task.origin) {
                        next.push(PropTask {
                            prop,
                            node: link.destination,
                            state,
                            value,
                            origin: task.origin,
                            level,
                        });
                    }
                }
            }
            // Terminal and 3+-arc states take the shared merge path.
            _ => {
                let (segments, links_scanned) = expand_into(network, rule, func, task, arrivals);
                sink.on_expand(task, segments, links_scanned, arrivals.len());
                if capped {
                    continue;
                }
                let level = task.level + 1;
                for arrival in arrivals.iter() {
                    sink.on_arrival(task, arrival)?;
                    if visited.should_expand(
                        arrival.state,
                        arrival.node,
                        arrival.value,
                        task.origin,
                    ) {
                        next.push(PropTask {
                            prop,
                            node: arrival.node,
                            state: arrival.state,
                            value: arrival.value,
                            origin: task.origin,
                            level,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Delivers one relation run's arrivals in slice order: the inner loop
/// of both push fast paths.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stream_run<S: WaveSink>(
    task: &PropTask,
    run: &[snap_kb::Link],
    state: u8,
    func: StepFunc,
    prop: usize,
    visited: &mut WaveVisited,
    sink: &mut S,
    next: &mut Vec<PropTask>,
) -> Result<(), CoreError> {
    let level = task.level + 1;
    for link in run {
        let value = func.apply(task.value, link.weight);
        let arrival = PropArrival {
            node: link.destination,
            state,
            value,
        };
        sink.on_arrival(task, &arrival)?;
        if visited.should_expand(state, link.destination, value, task.origin) {
            next.push(PropTask {
                prop,
                node: link.destination,
                state,
                value,
                origin: task.origin,
                level,
            });
        }
    }
    Ok(())
}

/// Sort key restoring spec order inside the pull direction:
/// `(position in wave, link insertion rank, arc index)` — exactly the
/// order the push merge emits arrivals.
type PullKey = (u32, u32, u8);

/// Reusable pull-wave buffers, allocated once on the first pull wave.
struct PullScratch {
    /// Bitmap over wave task nodes.
    frontier: Bitmap,
    /// Node → wave-task CSR offsets (counting sort; `width + 1` long).
    offsets: Vec<u32>,
    /// Scatter cursors for the counting sort.
    cursors: Vec<u32>,
    /// Wave positions grouped by node, preserving wave order per node.
    order: Vec<u32>,
    /// Keyed arrivals gathered at one destination.
    gathered: Vec<(PullKey, PropArrival)>,
    /// Keyed accepted tasks across all destinations of the wave.
    accepted: Vec<(PullKey, PropTask)>,
}

impl PullScratch {
    fn new(node_count: usize) -> Self {
        PullScratch {
            frontier: Bitmap::new(node_count),
            offsets: Vec::new(),
            cursors: Vec::new(),
            order: Vec::new(),
            gathered: Vec::new(),
            accepted: Vec::new(),
        }
    }
}

/// Pull direction: gather into every destination through the reverse
/// CSR. Expansion accounting runs first in wave order (that sequence is
/// direction-independent); arrivals are then applied per destination in
/// [`PullKey`] order and the accepted next wave re-sorted globally by
/// the same key, restoring spec order.
#[allow(clippy::too_many_arguments)]
fn pull_wave<S: WaveSink>(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    wave: &[PropTask],
    reverse: &ReverseTable,
    scratch: &mut PullScratch,
    visited: &mut WaveVisited,
    sink: &mut S,
    next: &mut Vec<PropTask>,
) -> Result<(), CoreError> {
    // Per-task expansion accounting. The hardware fetches every relation
    // slot of the expanding node whatever direction the kernel runs, so
    // segments and fanout are node properties, and the arrival count is
    // the sum of the matching run lengths — the same totals expand_into
    // reports, without materializing a single arrival.
    for task in wave {
        let arcs = rule.state(task.state).arcs();
        if arcs.is_empty() {
            sink.on_expand(task, 0, 0, 0);
            continue;
        }
        if let [arc] = arcs {
            let (segments, fanout, run, _) =
                network.ranked_links_with_cost(task.node, arc.relation);
            sink.on_expand(task, segments, fanout, run.len());
            continue;
        }
        let mut produced = 0;
        for arc in arcs {
            produced += network.ranked_links_by(task.node, arc.relation).0.len();
        }
        sink.on_expand(
            task,
            network.segments(task.node),
            network.fanout(task.node),
            produced,
        );
    }

    // Frontier bitmap plus a node → wave-task CSR via counting sort
    // (a node can hold several tasks: different rule states, or the
    // same site re-improved within one wave).
    let width = wave
        .iter()
        .map(|t| t.node.index() + 1)
        .max()
        .unwrap_or(0)
        .max(network.node_count());
    scratch.frontier.clear_all();
    scratch.offsets.clear();
    scratch.offsets.resize(width + 1, 0);
    for task in wave {
        scratch.offsets[task.node.index() + 1] += 1;
        scratch.frontier.set(task.node);
    }
    for i in 0..width {
        scratch.offsets[i + 1] += scratch.offsets[i];
    }
    scratch.cursors.clear();
    scratch.cursors.extend_from_slice(&scratch.offsets[..width]);
    scratch.order.clear();
    scratch.order.resize(wave.len(), 0);
    for (ti, task) in wave.iter().enumerate() {
        let cursor = &mut scratch.cursors[task.node.index()];
        scratch.order[*cursor as usize] = ti as u32;
        *cursor += 1;
    }

    let level = wave[0].level + 1;
    scratch.accepted.clear();
    for d in 0..width {
        let incoming = reverse.incoming(NodeId(d as u32));
        if incoming.is_empty() {
            continue;
        }
        scratch.gathered.clear();
        for rev in incoming {
            if !scratch.frontier.test(rev.source) {
                continue;
            }
            let s = rev.source.index();
            let at_source =
                &scratch.order[scratch.offsets[s] as usize..scratch.offsets[s + 1] as usize];
            for &ti in at_source {
                let task = &wave[ti as usize];
                let arcs = rule.state(task.state).arcs();
                for (ai, arc) in arcs.iter().enumerate() {
                    if arc.relation == rev.relation {
                        scratch.gathered.push((
                            (ti, rev.rank, ai as u8),
                            PropArrival {
                                node: NodeId(d as u32),
                                state: arc.next,
                                value: func.apply(task.value, rev.weight),
                            },
                        ));
                    }
                }
            }
        }
        // Apply this destination's arrivals in spec order: merge
        // decisions at a node only depend on the arrivals at that node,
        // so per-destination ordering reproduces the scalar fixed point.
        scratch.gathered.sort_unstable_by_key(|&(key, _)| key);
        for &(key, arrival) in scratch.gathered.iter() {
            let task = &wave[key.0 as usize];
            sink.on_arrival(task, &arrival)?;
            if visited.should_expand(arrival.state, arrival.node, arrival.value, task.origin) {
                scratch.accepted.push((
                    key,
                    PropTask {
                        prop,
                        node: arrival.node,
                        state: arrival.state,
                        value: arrival.value,
                        origin: task.origin,
                        level,
                    },
                ));
            }
        }
    }
    // Restore the spec's next-wave order (task-major, then emission
    // order) so later waves — and any push wave downstream — stay
    // bit-identical to the scalar queue.
    scratch.accepted.sort_unstable_by_key(|&(key, _)| key);
    next.extend(scratch.accepted.iter().map(|&(_, task)| task));
    Ok(())
}

/// One query's lane through a fused multi-query sweep: its visited
/// tables, current/next frontier, and the per-task site index the sweep
/// scatters back each level. Pool lanes across batches — `prepare`
/// (called by [`propagate_multi_wave`]) resets state in place, so
/// steady-state serving allocates nothing per query.
#[derive(Default)]
pub struct BatchLane {
    visited: WaveVisited,
    wave: Vec<PropTask>,
    next: Vec<PropTask>,
    /// `rec_of[pos]` = index into the scratch site records for the
    /// task at `wave[pos]`, valid for the current level only.
    rec_of: Vec<u32>,
}

impl BatchLane {
    /// Creates an empty lane; the first sweep sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, nodes: usize, states: usize) {
        self.visited.prepare(nodes, states);
        self.wave.clear();
        self.next.clear();
        self.rec_of.clear();
    }
}

/// Caller-pooled scratch shared by every lane of a fused sweep: one
/// site record per distinct `(node, state)`, the flat arrival templates
/// the records slice into, and a generation-stamped site index that
/// dedups sites in O(1) per task (no sorting — the per-level cost is
/// linear in the summed frontier size). Reuse one scratch across
/// batches; `propagate_multi_wave` clears it in place.
#[derive(Default)]
pub struct MultiWaveScratch {
    recs: Vec<SiteRec>,
    template: Vec<TemplateArrival>,
    /// `site_gen[state][node] == gen` marks the site as already probed
    /// this level; `site_rec[state][node]` then holds its record index.
    /// Stamping makes per-level reset free.
    site_gen: Vec<Vec<u64>>,
    site_rec: Vec<Vec<u32>>,
    gen: u64,
    sliced: SlicedPlanes,
}

impl MultiWaveScratch {
    /// Creates an empty scratch; the first sweep sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the bit-sliced planes for a `lanes`-query sweep over a
    /// `states`-state rule and `nodes` node slots: clears every plane
    /// (O(slots touched last sweep)) and sets the lane stride. Must run
    /// before [`MultiWaveScratch::seed_marker`] and
    /// [`propagate_multi_wave_sliced`], which assert the stride.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_SLICED_LANES`].
    pub fn begin_sliced(&mut self, lanes: usize, states: usize, nodes: usize) {
        assert!(
            (1..=MAX_SLICED_LANES).contains(&lanes),
            "sliced sweeps hold 1..=64 lanes"
        );
        let p = &mut self.sliced;
        p.k = lanes;
        while p.seen.len() < states {
            p.seen.push(LanePlane::new());
            p.best.push(Vec::new());
        }
        let stride = nodes * lanes;
        for s in 0..states {
            p.seen[s].reset();
            p.seen[s].ensure(nodes);
            if p.best[s].len() < stride {
                p.best[s].resize(stride, (0.0, NodeId(0)));
            }
        }
        p.marker_seen.reset();
        p.marker_seen.ensure(nodes);
        if p.marker_best.len() < stride {
            p.marker_best.resize(stride, MarkerValue::default());
        }
    }

    /// Pre-loads `lane`'s marker plane with one node of the target
    /// marker's *existing* region state (`value` carries the payload
    /// for a complex target, `None` for binary). Required for
    /// bit-identity whenever the target marker is already active
    /// before the propagation: the epsilon merge fold is
    /// order-sensitive, so folding arrivals from an empty plane and
    /// reconciling with the region afterwards can pick a different
    /// `(value, origin)` than the spec's arrival-by-arrival merge
    /// against the pre-existing entry.
    pub fn seed_marker(&mut self, lane: usize, node: NodeId, value: Option<MarkerValue>) {
        let p = &mut self.sliced;
        debug_assert!(lane < p.k, "seed_marker after begin_sliced");
        let n = node.index();
        p.marker_seen.or(n, 1 << lane);
        if let Some(v) = value {
            let idx = n * p.k + lane;
            if idx >= p.marker_best.len() {
                p.marker_best.resize((n + 1) * p.k, MarkerValue::default());
            }
            p.marker_best[idx] = v;
        }
    }

    /// Drains one lane's folded target-marker state after a sliced
    /// sweep: every node the lane's propagation (or pre-seed) touched,
    /// with the final merged payload when `complex` (binary markers
    /// carry none). Node order follows first touch across the whole
    /// batch, which is fine for the content-addressed absorb — the
    /// fold already happened per arrival, in spec order.
    pub fn marker_results(
        &self,
        lane: usize,
        complex: bool,
    ) -> impl Iterator<Item = (NodeId, Option<MarkerValue>)> + '_ {
        let p = &self.sliced;
        let bit = 1u64 << lane;
        let k = p.k;
        p.marker_seen.touched().iter().filter_map(move |&slot| {
            let s = slot as usize;
            if p.marker_seen.word(s) & bit == 0 {
                return None;
            }
            let value = if complex {
                Some(p.marker_best[s * k + lane])
            } else {
                None
            };
            Some((NodeId(slot), value))
        })
    }
}

/// The lane-major state of one sliced sweep: per rule state one
/// [`LanePlane`] (slot = node) answering "which lanes have visited this
/// site?" in a single word, plus a lane-strided `(value, origin)` array
/// for the comparator fallback; the same pair again for the target
/// marker; and the round-grouping scratch that gangs each round's tasks
/// into per-site lane masks.
#[derive(Default)]
struct SlicedPlanes {
    /// Lane stride of the arrays below — the batch depth K ≤ 64.
    k: usize,
    /// Visited plane per rule state.
    seen: Vec<LanePlane>,
    /// `best[state][node * k + lane]` — valid behind a set seen bit.
    best: Vec<Vec<(f32, NodeId)>>,
    /// Which lanes hold the target marker at each node.
    marker_seen: LanePlane,
    /// `marker_best[node * k + lane]` — the folded payload.
    marker_best: Vec<MarkerValue>,
    /// Round-stamped site grouping: `round_gen[rec] == round` marks the
    /// site live this round with lane mask `round_mask[rec]`.
    round_gen: Vec<u64>,
    round_mask: Vec<u64>,
    /// Distinct site records of the current round, in first-lane order.
    round_sites: Vec<u32>,
    round: u64,
    /// Per-site expansion cost of the current level, from the caller's
    /// cost closure — computed once per site, charged once per lane.
    rec_ns: Vec<u64>,
    /// Each live lane's task at the current round position.
    round_task: Vec<PropTask>,
}

/// Cost units and template slice of one distinct `(node, state)` site,
/// probed once per level no matter how many lanes expand it.
#[derive(Clone, Copy)]
struct SiteRec {
    segments: u32,
    fanout: u32,
    start: u32,
    len: u32,
}

/// One arrival of a site's expansion template: everything about the
/// arrival except the task-dependent value, which each lane computes by
/// applying the step function to its own task value — the exact
/// operation [`expand_into`] performs, so values are bit-identical.
#[derive(Clone, Copy)]
struct TemplateArrival {
    node: NodeId,
    state: u8,
    weight: f32,
}

/// Runs one `PROPAGATE` for `K = lanes.len()` independent queries as
/// fused level-synchronous waves: `seeds[k]` feeds lane `k`, whose
/// events go to `sinks[k]`.
///
/// All lanes advance in lockstep, one level per round. Each round the
/// frontier tasks of every lane are counting-grouped by `(node, state)`
/// site; each distinct site's CSR row probe, rank merge, and arrival
/// template are computed **once** and replayed into every lane holding
/// a task there — the amortization that makes batched query serving
/// pay. Per lane, tasks replay in wave order and arrivals in template
/// order, which is exactly the scalar spec's event order: every lane's
/// event stream, visited decisions, and collect results are
/// bit-identical to running [`propagate_wave`] — and therefore the
/// scalar loop — on that lane's seeds alone.
///
/// A level at `max_hops` still reports every lane's expansions (their
/// cost is charged) but delivers no arrivals, like the scalar loop.
/// There is no pull direction: fused probes already amortize row
/// access across lanes, which is the win pull buys a single dense
/// frontier.
///
/// Returns per-lane [`WaveStats`]; `stats[k].waves` counts the levels
/// lane `k` was live.
///
/// # Errors
///
/// Propagates the first error any `sinks[k].on_arrival` returns; the
/// batch is abandoned (lanes are reset by the next call).
///
/// # Panics
///
/// Panics unless [`wave_supported`] holds, or if `seeds`, `lanes`, and
/// `sinks` disagree on the query count.
#[allow(clippy::too_many_arguments)]
pub fn propagate_multi_wave<S: WaveSink>(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    max_hops: u8,
    seeds: &[&[(NodeId, f32)]],
    lanes: &mut [BatchLane],
    scratch: &mut MultiWaveScratch,
    sinks: &mut [S],
) -> Result<Vec<WaveStats>, CoreError> {
    assert!(
        wave_supported(network, rule),
        "wave kernel requires a flushed relation table and mergeable rule states"
    );
    assert!(
        seeds.len() == lanes.len() && lanes.len() == sinks.len(),
        "seeds, lanes, and sinks must agree on the query count"
    );
    let node_count = network.node_count();
    let states = rule.states().len();
    let mut stats = vec![WaveStats::default(); lanes.len()];

    for (lane, &lane_seeds) in lanes.iter_mut().zip(seeds) {
        lane.prepare(node_count, states);
        for &(node, value) in lane_seeds {
            if lane.visited.should_expand(0, node, value, node) {
                lane.wave.push(PropTask {
                    prop,
                    node,
                    state: 0,
                    value,
                    origin: node,
                    level: 0,
                });
            }
        }
    }

    while scratch.site_gen.len() < states {
        scratch.site_gen.push(Vec::new());
        scratch.site_rec.push(Vec::new());
    }

    let mut level: usize = 0;
    loop {
        let mut live = false;
        for (li, lane) in lanes.iter_mut().enumerate() {
            if lane.wave.is_empty() {
                continue;
            }
            live = true;
            stats[li].waves += 1;
            lane.rec_of.clear();
            lane.rec_of.resize(lane.wave.len(), 0);
        }
        if !live {
            break;
        }

        // Build each distinct site's record — cost units plus arrival
        // template — once, stamping its index into the site table so
        // every later task at the site (any lane) reuses it in O(1).
        scratch.gen += 1;
        scratch.recs.clear();
        scratch.template.clear();
        for lane in lanes.iter_mut() {
            for (pi, task) in lane.wave.iter().enumerate() {
                let st = task.state as usize;
                let n = task.node.index();
                if n >= scratch.site_gen[st].len() {
                    scratch.site_gen[st].resize(n + 1, 0);
                    scratch.site_rec[st].resize(n + 1, 0);
                }
                let rec_id = if scratch.site_gen[st][n] == scratch.gen {
                    scratch.site_rec[st][n]
                } else {
                    let rec = expand_template(
                        network,
                        rule,
                        task.node,
                        task.state,
                        &mut scratch.template,
                    );
                    let id = scratch.recs.len() as u32;
                    scratch.recs.push(rec);
                    scratch.site_gen[st][n] = scratch.gen;
                    scratch.site_rec[st][n] = id;
                    id
                };
                lane.rec_of[pi] = rec_id;
            }
        }

        // Replay each lane against the shared templates: wave order,
        // then template order — the scalar spec's event sequence.
        let capped = level >= max_hops as usize;
        for (lane, sink) in lanes.iter_mut().zip(sinks.iter_mut()) {
            for (pi, task) in lane.wave.iter().enumerate() {
                let rec = scratch.recs[lane.rec_of[pi] as usize];
                sink.on_expand(
                    task,
                    rec.segments as usize,
                    rec.fanout as usize,
                    rec.len as usize,
                );
                if capped {
                    continue;
                }
                let window = rec.start as usize..(rec.start + rec.len) as usize;
                for t in &scratch.template[window] {
                    let value = func.apply(task.value, t.weight);
                    let arrival = PropArrival {
                        node: t.node,
                        state: t.state,
                        value,
                    };
                    sink.on_arrival(task, &arrival)?;
                    if lane
                        .visited
                        .should_expand(t.state, t.node, value, task.origin)
                    {
                        lane.next.push(PropTask {
                            prop,
                            node: t.node,
                            state: t.state,
                            value,
                            origin: task.origin,
                            level: task.level + 1,
                        });
                    }
                }
            }
            std::mem::swap(&mut lane.wave, &mut lane.next);
            lane.next.clear();
        }
        level += 1;
    }
    for (li, lane) in lanes.iter().enumerate() {
        stats[li].visited = lane.visited.visited;
    }
    Ok(stats)
}

/// Per-lane outcome of one bit-sliced sweep: the replay path's
/// [`WaveStats`] plus the counters its sink would have accumulated —
/// task expansions, arrival deliveries, deepest delivered level, and
/// the summed per-expansion nanoseconds from the caller's cost
/// closure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlicedLaneReport {
    /// Wave/visited statistics, identical to the replay path's.
    pub stats: WaveStats,
    /// Tasks expanded (hop-capped and empty expansions included).
    pub expansions: u64,
    /// Arrivals delivered (counted whether or not they improved).
    pub activations: u64,
    /// Deepest level that delivered an arrival, plus one.
    pub max_depth: u8,
    /// Summed expansion cost from the caller's closure.
    pub expand_ns: u64,
}

/// The order-sensitive `(value, origin)` merge shared by every visited
/// table and the region's arrival fold: a strictly smaller value wins;
/// an equal value (within [`VALUE_EPSILON`](crate::VALUE_EPSILON))
/// from a smaller origin wins the binding.
#[inline]
fn improves(best: (f32, NodeId), value: f32, origin: NodeId) -> bool {
    const EPS: f32 = crate::region::VALUE_EPSILON;
    value < best.0 - EPS || ((value - best.0).abs() <= EPS && origin < best.1)
}

/// One lane's visited fold through the sliced planes — the single-lane
/// form (seed gating) of the word-parallel fold in the round loop.
fn sliced_visit(
    p: &mut SlicedPlanes,
    state: u8,
    node: NodeId,
    lane: usize,
    value: f32,
    origin: NodeId,
    visited: &mut usize,
) -> bool {
    let n = node.index();
    let bit = 1u64 << lane;
    let prev = p.seen[state as usize].or(n, bit);
    let best = &mut p.best[state as usize];
    let idx = n * p.k + lane;
    if idx >= best.len() {
        best.resize((n + 1) * p.k, (0.0, NodeId(0)));
    }
    let slot = &mut best[idx];
    if prev & bit == 0 {
        *slot = (value, origin);
        *visited += 1;
        return true;
    }
    if improves(*slot, value, origin) {
        *slot = (value.min(slot.0), origin);
        true
    } else {
        false
    }
}

/// Runs one `PROPAGATE` for `K = lanes.len() ≤ 64` queries with all
/// per-lane state transposed into lane-major bit-planes — the
/// word-at-a-time restructuring of [`propagate_multi_wave`], which
/// stays as the executable per-lane spec.
///
/// Levels advance in lockstep and build the same deduped site
/// templates as the replay path. The difference is the iteration
/// order: instead of lanes × tasks, each level walks **rounds** (wave
/// position `p` ascending) and each round's tasks grouped by site into
/// one K-bit lane-mask word. That grouping is sound because visited
/// and marker decisions at distinct sites are independent — only the
/// per-(lane, destination) arrival order matters, and a lane holds at
/// most one task per round, so its arrivals still land in (round
/// ascending, template order) = wave order × template order: exactly
/// the spec sequence. Per template arrival, one `OR` on the site's
/// lane plane check-and-sets **all** lanes at once; lanes whose bit
/// was clear are guaranteed first visits and skip the comparator,
/// and only the rest replay the per-lane `(value, origin)` merge.
///
/// The target-marker fold runs in the same planes ([`Region::arrive`]
/// (crate::Region::arrive)'s exact merge, keyed by node), so the
/// region is untouched during the sweep: the caller pre-seeds any
/// existing target state with [`MultiWaveScratch::seed_marker`],
/// absorbs the fixed point from
/// [`MultiWaveScratch::marker_results`] afterwards, and charges
/// `out[k].expand_ns` (accumulated through `expand_cost`, computed
/// once per site per level) instead of running a sink per event.
///
/// # Panics
///
/// Panics unless [`wave_supported`] holds, if `seeds`/`lanes`/`out`
/// disagree on the query count, or if
/// [`MultiWaveScratch::begin_sliced`] wasn't called for this lane
/// count.
#[allow(clippy::too_many_arguments)]
pub fn propagate_multi_wave_sliced(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    max_hops: u8,
    seeds: &[&[(NodeId, f32)]],
    lanes: &mut [BatchLane],
    scratch: &mut MultiWaveScratch,
    complex_target: bool,
    expand_cost: impl Fn(usize, usize, usize) -> u64,
    out: &mut [SlicedLaneReport],
) {
    assert!(
        wave_supported(network, rule),
        "wave kernel requires a flushed relation table and mergeable rule states"
    );
    let k = lanes.len();
    assert!(
        seeds.len() == k && out.len() == k,
        "seeds, lanes, and out must agree on the query count"
    );
    assert_eq!(
        scratch.sliced.k, k,
        "call begin_sliced for this lane count before the sweep"
    );
    let states = rule.states().len();

    // Seeds gate through the state-0 visited plane in order, exactly
    // like the scalar seed loop.
    for (li, (lane, &lane_seeds)) in lanes.iter_mut().zip(seeds).enumerate() {
        lane.wave.clear();
        lane.next.clear();
        lane.rec_of.clear();
        for &(node, value) in lane_seeds {
            if sliced_visit(
                &mut scratch.sliced,
                0,
                node,
                li,
                value,
                node,
                &mut out[li].stats.visited,
            ) {
                lane.wave.push(PropTask {
                    prop,
                    node,
                    state: 0,
                    value,
                    origin: node,
                    level: 0,
                });
            }
        }
    }

    let MultiWaveScratch {
        recs,
        template,
        site_gen,
        site_rec,
        gen,
        sliced,
    } = scratch;
    while site_gen.len() < states {
        site_gen.push(Vec::new());
        site_rec.push(Vec::new());
    }
    sliced.round_task.resize(
        k,
        PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        },
    );

    let mut level: usize = 0;
    loop {
        let mut live = false;
        let mut max_len = 0;
        for (li, lane) in lanes.iter_mut().enumerate() {
            if lane.wave.is_empty() {
                continue;
            }
            live = true;
            out[li].stats.waves += 1;
            max_len = max_len.max(lane.wave.len());
            lane.rec_of.clear();
            lane.rec_of.resize(lane.wave.len(), 0);
        }
        if !live {
            break;
        }

        // Site records and templates: identical to the replay path.
        *gen += 1;
        recs.clear();
        template.clear();
        for lane in lanes.iter_mut() {
            for (pi, task) in lane.wave.iter().enumerate() {
                let st = task.state as usize;
                let n = task.node.index();
                if n >= site_gen[st].len() {
                    site_gen[st].resize(n + 1, 0);
                    site_rec[st].resize(n + 1, 0);
                }
                let rec_id = if site_gen[st][n] == *gen {
                    site_rec[st][n]
                } else {
                    let rec = expand_template(network, rule, task.node, task.state, template);
                    let id = recs.len() as u32;
                    recs.push(rec);
                    site_gen[st][n] = *gen;
                    site_rec[st][n] = id;
                    id
                };
                lane.rec_of[pi] = rec_id;
            }
        }
        // Expansion cost once per distinct site, charged per lane.
        sliced.rec_ns.clear();
        sliced.rec_ns.extend(
            recs.iter()
                .map(|r| expand_cost(r.segments as usize, r.fanout as usize, r.len as usize)),
        );
        if sliced.round_gen.len() < recs.len() {
            sliced.round_gen.resize(recs.len(), 0);
            sliced.round_mask.resize(recs.len(), 0);
        }

        let SlicedPlanes {
            k: stride,
            seen,
            best,
            marker_seen,
            marker_best,
            round_gen,
            round_mask,
            round_sites,
            round,
            rec_ns,
            round_task,
        } = sliced;
        let stride = *stride;
        let capped = level >= max_hops as usize;
        let depth = (level + 1).min(u8::MAX as usize) as u8;

        for pos in 0..max_len {
            // Gang this round's tasks — at most one per lane — into
            // per-site lane masks.
            *round += 1;
            round_sites.clear();
            for (li, lane) in lanes.iter().enumerate() {
                let Some(task) = lane.wave.get(pos) else {
                    continue;
                };
                let rec = lane.rec_of[pos] as usize;
                if round_gen[rec] != *round {
                    round_gen[rec] = *round;
                    round_mask[rec] = 0;
                    round_sites.push(rec as u32);
                }
                round_mask[rec] |= 1 << li;
                round_task[li] = *task;
            }
            for &rec_id in round_sites.iter() {
                let rec_id = rec_id as usize;
                let mask = round_mask[rec_id];
                let rec = recs[rec_id];
                let ns = rec_ns[rec_id];
                let mut m = mask;
                while m != 0 {
                    let li = m.trailing_zeros() as usize;
                    m &= m - 1;
                    out[li].expansions += 1;
                    out[li].expand_ns += ns;
                }
                if capped || rec.len == 0 {
                    continue;
                }
                let mut m = mask;
                while m != 0 {
                    let li = m.trailing_zeros() as usize;
                    m &= m - 1;
                    out[li].activations += rec.len as u64;
                    if out[li].max_depth < depth {
                        out[li].max_depth = depth;
                    }
                }
                let window = rec.start as usize..(rec.start + rec.len) as usize;
                for t in &template[window] {
                    let n = t.node.index();
                    let st = t.state as usize;
                    // One word op check-and-sets the site for every
                    // lane in the round: `!prev & mask` are guaranteed
                    // first visits that skip the comparator.
                    let prev_m = marker_seen.or(n, mask);
                    let prev_v = seen[st].or(n, mask);
                    let need = (n + 1) * stride;
                    if best[st].len() < need {
                        best[st].resize(need, (0.0, NodeId(0)));
                    }
                    if complex_target && marker_best.len() < need {
                        marker_best.resize(need, MarkerValue::default());
                    }
                    let vbest = &mut best[st];
                    let mut m = mask;
                    while m != 0 {
                        let li = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let bit = 1u64 << li;
                        let task = &round_task[li];
                        let value = func.apply(task.value, t.weight);
                        if complex_target {
                            let slot = &mut marker_best[n * stride + li];
                            if prev_m & bit == 0 {
                                *slot = MarkerValue {
                                    value,
                                    origin: task.origin,
                                };
                            } else if improves((slot.value, slot.origin), value, task.origin) {
                                *slot = MarkerValue {
                                    value: value.min(slot.value),
                                    origin: task.origin,
                                };
                            }
                        }
                        let slot = &mut vbest[n * stride + li];
                        let accept = if prev_v & bit == 0 {
                            *slot = (value, task.origin);
                            out[li].stats.visited += 1;
                            true
                        } else if improves(*slot, value, task.origin) {
                            *slot = (value.min(slot.0), task.origin);
                            true
                        } else {
                            false
                        };
                        if accept {
                            lanes[li].next.push(PropTask {
                                prop,
                                node: t.node,
                                state: t.state,
                                value,
                                origin: task.origin,
                                level: depth,
                            });
                        }
                    }
                }
            }
        }
        for lane in lanes.iter_mut() {
            std::mem::swap(&mut lane.wave, &mut lane.next);
            lane.next.clear();
        }
        level += 1;
    }
}

/// Expands one `(node, state)` site into weight-level template
/// arrivals, mirroring [`expand_into`]'s order and cost units exactly:
/// terminal states scan nothing; a single arc streams its run; multi-
/// arc states merge their runs in ascending `(insertion rank, arc
/// index)` order.
fn expand_template(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    node: NodeId,
    state: u8,
    template: &mut Vec<TemplateArrival>,
) -> SiteRec {
    let start = template.len() as u32;
    let s = rule.state(state);
    if s.is_terminal() {
        return SiteRec {
            segments: 0,
            fanout: 0,
            start,
            len: 0,
        };
    }
    let segments = network.segments(node) as u32;
    let fanout = network.fanout(node) as u32;
    let arcs = s.arcs();
    if let [arc] = arcs {
        let (run, _) = network.ranked_links_by(node, arc.relation);
        template.reserve(run.len());
        for link in run {
            template.push(TemplateArrival {
                node: link.destination,
                state: arc.next,
                weight: link.weight,
            });
        }
    } else {
        let mut runs = [(&[] as &[snap_kb::Link], &[] as &[u32]); MAX_MERGE_ARCS];
        let mut cursors = [0usize; MAX_MERGE_ARCS];
        for (slot, arc) in runs.iter_mut().zip(arcs) {
            *slot = network.ranked_links_by(node, arc.relation);
        }
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (a, (_, ranks)) in runs[..arcs.len()].iter().enumerate() {
                if let Some(&rank) = ranks.get(cursors[a]) {
                    if best.is_none_or(|b| (rank, a) < b) {
                        best = Some((rank, a));
                    }
                }
            }
            let Some((_, a)) = best else { break };
            let link = &runs[a].0[cursors[a]];
            cursors[a] += 1;
            template.push(TemplateArrival {
                node: link.destination,
                state: arcs[a].next,
                weight: link.weight,
            });
        }
    }
    SiteRec {
        segments,
        fanout,
        start,
        len: template.len() as u32 - start,
    }
}

/// Kernel-owned visited tables: per rule state (the propagation index
/// is fixed for a run), one seen-bitmap and one flat `(value, origin)`
/// array. Decisions replicate the dense `VisitedMap` backing — first
/// visit always expands; re-expansion needs a value smaller beyond
/// [`VALUE_EPSILON`](crate::VALUE_EPSILON) or an equal value from a
/// smaller origin — but the first-visit probe is one bit test instead
/// of a sentinel compare.
#[derive(Default)]
struct WaveVisited {
    /// One table per rule state, allocated up front — arrival states
    /// always index a compiled state, so the probe is a plain bounds-
    /// checked index with no lazy-init branch.
    tables: Vec<StateTable>,
    visited: usize,
}

struct StateTable {
    seen: Bitmap,
    best: Vec<(f32, NodeId)>,
}

impl WaveVisited {
    fn new(nodes: usize, states: usize) -> Self {
        let mut v = WaveVisited::default();
        v.prepare(nodes, states);
        v
    }

    /// Resets in place for the next run, keeping table capacity. Stale
    /// bests are unobservable behind a cleared seen bit — the first
    /// visit overwrites them — so only the bitmaps are cleared.
    fn prepare(&mut self, nodes: usize, states: usize) {
        for table in &mut self.tables {
            table.seen.reset();
        }
        while self.tables.len() < states {
            self.tables.push(StateTable {
                seen: Bitmap::new(nodes),
                best: vec![(0.0, NodeId(0)); nodes],
            });
        }
        self.visited = 0;
    }

    fn should_expand(&mut self, state: u8, node: NodeId, value: f32, origin: NodeId) -> bool {
        let table = &mut self.tables[state as usize];
        let i = node.index();
        if i >= table.best.len() {
            // Maintenance can add nodes after the engine snapshots the
            // count; grow like the dense backing does.
            table.best.resize(i + 1, (0.0, NodeId(0)));
        }
        if table.seen.set(node) {
            table.best[i] = (value, origin);
            self.visited += 1;
            return true;
        }
        let slot = &mut table.best[i];
        if improves(*slot, value, origin) {
            *slot = (value.min(slot.0), origin);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::VisitedMap;
    use snap_isa::PropRule;
    use snap_kb::synth::{line_network, scale_free_network, star_network};
    use snap_kb::{Color, NetworkConfig, RelationType};
    use std::collections::VecDeque;

    /// Records the full event stream a sink sees.
    #[derive(Debug, Default, PartialEq)]
    struct Recorder {
        expands: Vec<(PropTask, usize, usize, usize)>,
        arrivals: Vec<(PropTask, PropArrival)>,
    }

    impl WaveSink for Recorder {
        fn on_expand(
            &mut self,
            task: &PropTask,
            segments: usize,
            links_scanned: usize,
            arrivals: usize,
        ) {
            self.expands
                .push((*task, segments, links_scanned, arrivals));
        }

        fn on_arrival(&mut self, task: &PropTask, arrival: &PropArrival) -> Result<(), CoreError> {
            self.arrivals.push((*task, *arrival));
            Ok(())
        }
    }

    /// The scalar spec, reduced to its schedule-relevant core: a FIFO
    /// queue over the shared expansion and visited semantics.
    fn scalar_reference(
        network: &SemanticNetwork,
        rule: &RuleProgram,
        func: StepFunc,
        max_hops: u8,
        seeds: &[(NodeId, f32)],
    ) -> Recorder {
        let mut visited = VisitedMap::dense(network.node_count());
        let mut queue = VecDeque::new();
        for &(node, value) in seeds {
            if visited.should_expand(0, 0, node, value, node) {
                queue.push_back(PropTask {
                    prop: 0,
                    node,
                    state: 0,
                    value,
                    origin: node,
                    level: 0,
                });
            }
        }
        let mut rec = Recorder::default();
        let mut buf = Vec::new();
        while let Some(task) = queue.pop_front() {
            let (segments, links_scanned) = expand_into(network, rule, func, &task, &mut buf);
            rec.expands.push((task, segments, links_scanned, buf.len()));
            if task.level >= max_hops {
                continue;
            }
            for arrival in &buf {
                rec.arrivals.push((task, *arrival));
                if visited.should_expand(0, arrival.state, arrival.node, arrival.value, task.origin)
                {
                    queue.push_back(PropTask {
                        prop: 0,
                        node: arrival.node,
                        state: arrival.state,
                        value: arrival.value,
                        origin: task.origin,
                        level: task.level + 1,
                    });
                }
            }
        }
        rec
    }

    fn run_kernel(
        network: &SemanticNetwork,
        rule: &RuleProgram,
        func: StepFunc,
        max_hops: u8,
        pull_density: f64,
        seeds: &[(NodeId, f32)],
    ) -> (Recorder, WaveStats) {
        let mut rec = Recorder::default();
        let stats = propagate_wave(
            network,
            rule,
            func,
            0,
            max_hops,
            pull_density,
            seeds,
            &mut rec,
        )
        .unwrap();
        (rec, stats)
    }

    /// A mixed workload: a scale-free hub network with a multi-value
    /// seed set, including a duplicate and an improving re-seed.
    fn workload() -> (SemanticNetwork, RuleProgram, Vec<(NodeId, f32)>) {
        let mut net = scale_free_network(300, 2, 11);
        net.flush_links();
        let rule = PropRule::Star(RelationType(0)).compile();
        let seeds = vec![
            (NodeId(250), 0.0),
            (NodeId(299), 1.5),
            (NodeId(250), 0.0),  // duplicate: gated out
            (NodeId(299), 0.25), // improvement: re-seeded
            (NodeId(120), 0.5),
        ];
        (net, rule, seeds)
    }

    #[test]
    fn push_matches_scalar_spec_event_for_event() {
        let (net, rule, seeds) = workload();
        let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, &seeds);
        let (push, stats) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 1e9, &seeds);
        assert_eq!(stats.pull_waves, 0, "over-unity density forces push");
        assert_eq!(push, spec, "push replays the spec event for event");
        assert!(!spec.arrivals.is_empty(), "workload actually propagates");
    }

    #[test]
    fn pull_matches_scalar_spec_results() {
        let (net, rule, seeds) = workload();
        let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, &seeds);
        let (pull, stats) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 0.0, &seeds);
        assert_eq!(stats.pull_waves, stats.waves, "zero density forces pull");
        // The expand sequence IS the task schedule: if pull accepted a
        // different set or produced a different next-wave order, some
        // expansion would differ.
        assert_eq!(pull.expands, spec.expands);
        // Arrival events agree per destination (order across
        // destinations is the one thing pull reorders).
        assert_eq!(pull.arrivals.len(), spec.arrivals.len());
        let nodes: std::collections::BTreeSet<u32> =
            spec.arrivals.iter().map(|(_, a)| a.node.0).collect();
        for node in nodes {
            let at = |r: &Recorder| -> Vec<(PropTask, PropArrival)> {
                r.arrivals
                    .iter()
                    .filter(|(_, a)| a.node.0 == node)
                    .copied()
                    .collect()
            };
            assert_eq!(at(&pull), at(&spec), "arrival order at node {node}");
        }
    }

    #[test]
    fn auto_density_switches_direction_per_wave() {
        // A star: wave 0 is one hub task (sparse → push), wave 1 is
        // every leaf (dense → pull).
        let mut net = star_network(100);
        net.flush_links();
        let rule = PropRule::Star(RelationType(0)).compile();
        let seeds = vec![(NodeId(0), 0.0)];
        let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, &seeds);
        let (auto, stats) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 0.07, &seeds);
        assert_eq!(stats.waves, 2);
        assert_eq!(stats.pull_waves, 1, "only the leaf wave is dense");
        assert_eq!(auto.expands, spec.expands);
        assert_eq!(stats.visited, 101);
    }

    #[test]
    fn hop_cap_charges_the_capped_wave_but_stops_it() {
        let mut net = line_network(10);
        net.flush_links();
        let rule = PropRule::Star(RelationType(0)).compile();
        let seeds = vec![(NodeId(0), 0.0)];
        for density in [1e9, 0.0] {
            let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 3, &seeds);
            let (kernel, stats) = run_kernel(&net, &rule, StepFunc::AddWeight, 3, density, &seeds);
            assert_eq!(kernel.expands, spec.expands);
            assert_eq!(kernel.arrivals.len(), spec.arrivals.len());
            // Levels 0..=3 expand (the level-3 task is charged, its
            // arrival suppressed), nothing deeper.
            assert_eq!(stats.waves, 4);
            assert_eq!(kernel.expands.len(), 4);
            assert_eq!(kernel.arrivals.len(), 3);
        }
    }

    #[test]
    fn multi_arc_rules_agree_in_both_directions() {
        // Spread walks two relations; the bridge communities carry
        // three, so arcs must filter and keys must tie-break.
        let mut net = snap_kb::synth::bridge_network(4, 32);
        net.flush_links();
        let rule = PropRule::Spread(RelationType(0), RelationType(2)).compile();
        let seeds = vec![(NodeId(0), 0.0)];
        let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, &seeds);
        let (push, _) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 1e9, &seeds);
        let (pull, _) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 0.0, &seeds);
        assert_eq!(push, spec);
        assert_eq!(pull.expands, spec.expands);
        assert_eq!(pull.arrivals.len(), spec.arrivals.len());
    }

    #[test]
    fn wave_supported_rejects_staged_links() {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let a = net.add_node(Color(0)).unwrap();
        let b = net.add_node(Color(0)).unwrap();
        net.add_link(a, RelationType(0), 1.0, b).unwrap();
        let rule = PropRule::Star(RelationType(0)).compile();
        assert!(!wave_supported(&net, &rule), "staged links need the scan");
        net.flush_links();
        assert!(wave_supported(&net, &rule));
    }

    #[test]
    fn multi_wave_lanes_match_scalar_spec_event_for_event() {
        let (net, rule, seeds) = workload();
        let queries: Vec<Vec<(NodeId, f32)>> = vec![
            seeds,
            vec![(NodeId(5), 0.3), (NodeId(250), 1.0), (NodeId(42), 0.0)],
            vec![(NodeId(299), 0.0)],
        ];
        let slices: Vec<&[(NodeId, f32)]> = queries.iter().map(|q| q.as_slice()).collect();
        let mut lanes: Vec<BatchLane> = (0..queries.len()).map(|_| BatchLane::new()).collect();
        let mut scratch = MultiWaveScratch::new();
        // Two batches over the same pooled lanes and scratch: the second
        // must replay identically, proving `prepare` fully resets.
        for round in 0..2 {
            let mut sinks = vec![
                Recorder::default(),
                Recorder::default(),
                Recorder::default(),
            ];
            let stats = propagate_multi_wave(
                &net,
                &rule,
                StepFunc::AddWeight,
                0,
                63,
                &slices,
                &mut lanes,
                &mut scratch,
                &mut sinks,
            )
            .unwrap();
            for (k, q) in queries.iter().enumerate() {
                let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, q);
                assert!(!spec.arrivals.is_empty(), "lane {k} actually propagates");
                assert_eq!(sinks[k], spec, "lane {k} round {round}");
                let (_, solo) = run_kernel(&net, &rule, StepFunc::AddWeight, 63, 1e9, q);
                assert_eq!(stats[k].visited, solo.visited, "lane {k}");
                assert_eq!(stats[k].waves, solo.waves, "lane {k}");
            }
        }
    }

    #[test]
    fn multi_wave_handles_multi_arc_rules_hop_caps_and_idle_lanes() {
        let mut net = snap_kb::synth::bridge_network(4, 32);
        net.flush_links();
        let rule = PropRule::Spread(RelationType(0), RelationType(2)).compile();
        let queries: Vec<Vec<(NodeId, f32)>> = vec![
            vec![(NodeId(0), 0.0)],
            vec![(NodeId(1), 0.5), (NodeId(0), 0.25)],
            vec![], // an idle lane rides along untouched
        ];
        let slices: Vec<&[(NodeId, f32)]> = queries.iter().map(|q| q.as_slice()).collect();
        let mut lanes: Vec<BatchLane> = (0..queries.len()).map(|_| BatchLane::new()).collect();
        let mut scratch = MultiWaveScratch::new();
        for max_hops in [2u8, 63] {
            let mut sinks = vec![
                Recorder::default(),
                Recorder::default(),
                Recorder::default(),
            ];
            let stats = propagate_multi_wave(
                &net,
                &rule,
                StepFunc::AddWeight,
                0,
                max_hops,
                &slices,
                &mut lanes,
                &mut scratch,
                &mut sinks,
            )
            .unwrap();
            for (k, q) in queries.iter().enumerate() {
                let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, max_hops, q);
                assert_eq!(sinks[k], spec, "lane {k} hops {max_hops}");
            }
            assert_eq!(stats[2], WaveStats::default(), "idle lane did nothing");
        }
    }

    /// Replays a spec event stream through [`Region::arrive`]'s exact
    /// merge, starting from `pre` — the expected target-marker fixed
    /// point a sliced sweep must produce.
    fn reference_marker_fold(
        spec: &Recorder,
        complex: bool,
        pre: &std::collections::BTreeMap<u32, MarkerValue>,
    ) -> std::collections::BTreeMap<u32, Option<MarkerValue>> {
        use std::collections::btree_map::Entry;
        let mut state: std::collections::BTreeMap<u32, Option<MarkerValue>> = pre
            .iter()
            .map(|(&n, &v)| (n, complex.then_some(v)))
            .collect();
        for (task, arrival) in &spec.arrivals {
            match state.entry(arrival.node.0) {
                Entry::Vacant(v) => {
                    v.insert(complex.then_some(MarkerValue {
                        value: arrival.value,
                        origin: task.origin,
                    }));
                }
                Entry::Occupied(mut o) => {
                    if !complex {
                        continue;
                    }
                    let cur = o.get_mut().as_mut().unwrap();
                    if improves((cur.value, cur.origin), arrival.value, task.origin) {
                        *cur = MarkerValue {
                            value: arrival.value.min(cur.value),
                            origin: task.origin,
                        };
                    }
                }
            }
        }
        state
    }

    /// Per-lane expectation from the scalar spec: the counters and
    /// cost sum the sliced sweep must reproduce without a sink.
    fn expected_report(
        spec: &Recorder,
        solo: WaveStats,
        cost: impl Fn(usize, usize, usize) -> u64,
    ) -> SlicedLaneReport {
        SlicedLaneReport {
            stats: solo,
            expansions: spec.expands.len() as u64,
            activations: spec.arrivals.len() as u64,
            max_depth: spec
                .arrivals
                .iter()
                .map(|(t, _)| t.level + 1)
                .max()
                .unwrap_or(0),
            expand_ns: spec.expands.iter().map(|&(_, s, l, a)| cost(s, l, a)).sum(),
        }
    }

    /// Runs a sliced batch and checks every lane against the scalar
    /// spec: counters, stats, cost sum, and the target-marker fold.
    #[allow(clippy::too_many_arguments)]
    fn assert_sliced_matches_spec(
        net: &SemanticNetwork,
        rule: &RuleProgram,
        max_hops: u8,
        queries: &[Vec<(NodeId, f32)>],
        complex: bool,
        pre: &[std::collections::BTreeMap<u32, MarkerValue>],
        lanes: &mut [BatchLane],
        scratch: &mut MultiWaveScratch,
        tag: &str,
    ) {
        let cost = |s: usize, l: usize, a: usize| (7 * s + 3 * l + a) as u64;
        let slices: Vec<&[(NodeId, f32)]> = queries.iter().map(|q| q.as_slice()).collect();
        scratch.begin_sliced(queries.len(), rule.states().len(), net.node_count());
        for (li, lane_pre) in pre.iter().enumerate() {
            for (&n, &v) in lane_pre {
                scratch.seed_marker(li, NodeId(n), complex.then_some(v));
            }
        }
        let mut out = vec![SlicedLaneReport::default(); queries.len()];
        propagate_multi_wave_sliced(
            net,
            rule,
            StepFunc::AddWeight,
            0,
            max_hops,
            &slices,
            lanes,
            scratch,
            complex,
            cost,
            &mut out,
        );
        for (li, q) in queries.iter().enumerate() {
            let spec = scalar_reference(net, rule, StepFunc::AddWeight, max_hops, q);
            let mut solo = Recorder::default();
            let solo_stats = propagate_wave(
                net,
                rule,
                StepFunc::AddWeight,
                0,
                max_hops,
                1e9,
                q,
                &mut solo,
            )
            .unwrap();
            assert_eq!(
                out[li],
                expected_report(&spec, solo_stats, cost),
                "{tag}: lane {li} counters"
            );
            let got: std::collections::BTreeMap<u32, Option<MarkerValue>> = scratch
                .marker_results(li, complex)
                .map(|(n, v)| (n.0, v))
                .collect();
            assert_eq!(
                got,
                reference_marker_fold(&spec, complex, &pre[li]),
                "{tag}: lane {li} marker fold"
            );
        }
    }

    #[test]
    fn sliced_matches_scalar_spec_counters_and_marker_fold() {
        let (net, rule, seeds) = workload();
        let queries: Vec<Vec<(NodeId, f32)>> = vec![
            seeds,
            vec![(NodeId(5), 0.3), (NodeId(250), 1.0), (NodeId(42), 0.0)],
            vec![], // idle lane rides along untouched
            vec![(NodeId(299), 0.0)],
        ];
        let mut lanes: Vec<BatchLane> = (0..queries.len()).map(|_| BatchLane::new()).collect();
        let mut scratch = MultiWaveScratch::new();
        let no_pre = vec![std::collections::BTreeMap::new(); queries.len()];
        // Two rounds over pooled lanes and scratch: the second must
        // replay identically, proving begin_sliced fully resets.
        for round in 0..2 {
            assert_sliced_matches_spec(
                &net,
                &rule,
                63,
                &queries,
                true,
                &no_pre,
                &mut lanes,
                &mut scratch,
                &format!("round {round}"),
            );
        }
        // A narrower batch over the same pooled planes: the stride
        // changes and stale wide-batch state must be unobservable.
        assert_sliced_matches_spec(
            &net,
            &rule,
            63,
            &queries[..2],
            true,
            &no_pre[..2],
            &mut lanes[..2],
            &mut scratch,
            "narrow",
        );
    }

    #[test]
    fn sliced_handles_multi_arc_rules_hop_caps_and_binary_targets() {
        let mut net = snap_kb::synth::bridge_network(4, 32);
        net.flush_links();
        let rule = PropRule::Spread(RelationType(0), RelationType(2)).compile();
        let queries: Vec<Vec<(NodeId, f32)>> = vec![
            vec![(NodeId(0), 0.0)],
            vec![(NodeId(1), 0.5), (NodeId(0), 0.25)],
            vec![(NodeId(9), 0.75)],
        ];
        let mut lanes: Vec<BatchLane> = (0..queries.len()).map(|_| BatchLane::new()).collect();
        let mut scratch = MultiWaveScratch::new();
        let no_pre = vec![std::collections::BTreeMap::new(); queries.len()];
        for max_hops in [0u8, 2, 63] {
            for complex in [true, false] {
                assert_sliced_matches_spec(
                    &net,
                    &rule,
                    max_hops,
                    &queries,
                    complex,
                    &no_pre,
                    &mut lanes,
                    &mut scratch,
                    &format!("hops {max_hops} complex {complex}"),
                );
            }
        }
    }

    #[test]
    fn sliced_runs_a_full_width_64_lane_batch() {
        let mut net = scale_free_network(200, 2, 7);
        net.flush_links();
        let rule = PropRule::Star(RelationType(0)).compile();
        let queries: Vec<Vec<(NodeId, f32)>> = (0..MAX_SLICED_LANES)
            .map(|i| vec![(NodeId((i * 3 % 200) as u32), i as f32 * 0.125)])
            .collect();
        let mut lanes: Vec<BatchLane> = (0..queries.len()).map(|_| BatchLane::new()).collect();
        let mut scratch = MultiWaveScratch::new();
        let no_pre = vec![std::collections::BTreeMap::new(); queries.len()];
        assert_sliced_matches_spec(
            &net,
            &rule,
            63,
            &queries,
            true,
            &no_pre,
            &mut lanes,
            &mut scratch,
            "full width",
        );
    }

    #[test]
    // The seed literals are deliberately written with more digits than
    // f32 keeps: they document the intended epsilon offsets from 1.0.
    #[allow(clippy::excessive_precision)]
    fn sliced_preseeded_marker_reproduces_order_sensitive_fold() {
        // The epsilon merge is a non-associative fold: two arrivals
        // that each lose individually against a pre-existing entry can
        // *win* when folded from an empty plane first. The pre-seed
        // must therefore load the region's existing target state.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for _ in 0..8 {
            net.add_node(Color(0)).unwrap();
        }
        net.add_link(NodeId(7), RelationType(0), 0.0, NodeId(1))
            .unwrap();
        net.add_link(NodeId(3), RelationType(0), 0.0, NodeId(1))
            .unwrap();
        net.flush_links();
        let rule = PropRule::Star(RelationType(0)).compile();
        let queries = vec![vec![(NodeId(7), 1.000_000_9), (NodeId(3), 1.000_001_8)]];
        let pre_entry = MarkerValue {
            value: 1.0,
            origin: NodeId(5),
        };
        let pre = vec![std::collections::BTreeMap::from([(1u32, pre_entry)])];
        let mut lanes = vec![BatchLane::new()];
        let mut scratch = MultiWaveScratch::new();
        assert_sliced_matches_spec(
            &net,
            &rule,
            63,
            &queries,
            true,
            &pre,
            &mut lanes,
            &mut scratch,
            "pre-seeded",
        );
        // With the pre-seed, both arrivals lose: node 1 keeps (1.0, 5).
        let folded = scratch.marker_results(0, true).collect::<Vec<_>>();
        assert!(folded.contains(&(NodeId(1), Some(pre_entry))));
        // Sanity: folding from empty picks a different fixed point —
        // the divergence the pre-seed exists to prevent.
        let spec = scalar_reference(&net, &rule, StepFunc::AddWeight, 63, &queries[0]);
        let from_empty = reference_marker_fold(&spec, true, &std::collections::BTreeMap::new());
        assert_ne!(from_empty[&1], Some(pre_entry));
    }

    #[test]
    fn wave_visited_decides_like_the_dense_map() {
        // Mirror of propagate.rs's exercise_visited, minus the prop
        // dimension the kernel fixes per run.
        let mut v = WaveVisited::new(8, 2);
        let o = NodeId(7);
        assert!(v.should_expand(0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, NodeId(3), 6.0, o));
        assert!(v.should_expand(0, NodeId(3), 3.0, o));
        assert!(v.should_expand(0, NodeId(3), 3.0, NodeId(2)));
        assert!(!v.should_expand(0, NodeId(3), 3.0, NodeId(5)));
        assert!(v.should_expand(1, NodeId(3), 9.0, o));
        assert_eq!(v.visited, 2);
        // Growth past the declared node count, like the dense backing.
        assert!(v.should_expand(0, NodeId(900), 1.0, NodeId(0)));
        assert!(!v.should_expand(0, NodeId(900), 1.0, NodeId(0)));
    }
}
