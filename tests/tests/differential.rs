//! Differential test harness: a fixed grid of knowledge bases ×
//! programs × cluster counts, executed on all three engines
//! (sequential oracle, discrete-event, threaded). Marker states
//! observed through collects must agree exactly on node sets and
//! within float tolerance on values.
//!
//! The grid itself (knowledge bases, programs, cell runners, the
//! equivalence check) lives in `snap_integration_tests::grid` so the
//! interleaving fuzzer (`fuzz_interleave.rs`) sweeps the exact same
//! cells under adversarial schedules.
//!
//! With the `obs` feature the harness additionally compares the
//! engines' `TraceReport` phase sequences: identical runs must have no
//! diverging phase, and an intentionally perturbed run (propagation
//! hop budget cut to 1) must be localized to the first `Propagate`
//! phase by `TraceReport::first_diverging_phase`.

use snap_core::{EngineKind, FaultPlan};
use snap_integration_tests::grid::{
    assert_equivalent, programs, run_cell, run_cell_cfg, CLUSTER_COUNTS, KBS,
};
use snap_kb::PartitionScheme;

/// The full differential grid: every engine must agree with the
/// sequential oracle on every cell. 3 KBs × 2 programs × 2 cluster
/// counts = 12 configurations, each run on 3 engines.
#[test]
fn differential_grid_engines_agree() {
    let mut combos = 0;
    for &(kb_name, kb) in KBS {
        for (prog_name, program) in &programs() {
            for &clusters in CLUSTER_COUNTS {
                combos += 1;
                let label = format!("{kb_name}/{prog_name}/c{clusters}");
                let oracle = run_cell(kb, program, clusters, EngineKind::Sequential, None, false);
                let des = run_cell(kb, program, clusters, EngineKind::Des, None, false);
                let threaded = run_cell(kb, program, clusters, EngineKind::Threaded, None, false);
                assert_equivalent(&format!("{label}/des"), &oracle.collects, &des.collects);
                assert_equivalent(
                    &format!("{label}/threaded"),
                    &oracle.collects,
                    &threaded.collects,
                );
            }
        }
    }
    assert!(
        combos >= 12,
        "grid shrank below the 12-combo floor: {combos}"
    );
}

/// Cluster count must not change logical results on any single engine
/// (re-partitioning invariance, cheap cross-check of the grid axes).
#[test]
fn differential_grid_cluster_count_invariant() {
    for &(kb_name, kb) in KBS {
        for (prog_name, program) in &programs() {
            for engine in [EngineKind::Des, EngineKind::Threaded] {
                let base = run_cell(kb, program, CLUSTER_COUNTS[0], engine, None, false);
                for &clusters in &CLUSTER_COUNTS[1..] {
                    let other = run_cell(kb, program, clusters, engine, None, false);
                    assert_equivalent(
                        &format!("{kb_name}/{prog_name}/{engine:?}/c{clusters}"),
                        &base.collects,
                        &other.collects,
                    );
                }
            }
        }
    }
}

/// Dense and hashed visited backings must make identical expansion
/// decisions: every grid cell collects the same node sets and values
/// whichever backing the engines run on.
#[test]
fn differential_grid_visited_backings_agree() {
    use snap_core::VisitedStrategy;
    for &(kb_name, kb) in KBS {
        for (prog_name, program) in &programs() {
            for engine in [
                EngineKind::Sequential,
                EngineKind::Des,
                EngineKind::Threaded,
            ] {
                let run_with = |strategy: VisitedStrategy| {
                    run_cell_cfg(kb, program, CLUSTER_COUNTS[0], engine, |c| {
                        c.visited = strategy;
                    })
                };
                let dense = run_with(VisitedStrategy::Dense);
                let hashed = run_with(VisitedStrategy::Hashed);
                assert_equivalent(
                    &format!("{kb_name}/{prog_name}/{engine:?}/dense-vs-hashed"),
                    &dense.collects,
                    &hashed.collects,
                );
            }
        }
    }
}

/// Every partition scheme — including the locality-aware `EdgeCut` —
/// must leave logical results untouched on both parallel engines: the
/// placement of a node decides who computes it, never what is computed.
#[test]
fn differential_grid_partition_schemes_agree() {
    const SCHEMES: &[PartitionScheme] = &[
        PartitionScheme::Sequential,
        PartitionScheme::RoundRobin,
        PartitionScheme::Semantic,
        PartitionScheme::EdgeCut,
    ];
    for &(kb_name, kb) in KBS {
        for (prog_name, program) in &programs() {
            let oracle = run_cell(kb, program, 2, EngineKind::Sequential, None, false);
            for &clusters in CLUSTER_COUNTS {
                for &scheme in SCHEMES {
                    for engine in [EngineKind::Des, EngineKind::Threaded] {
                        let report = run_cell_cfg(kb, program, clusters, engine, |c| {
                            c.partition = scheme;
                        });
                        assert_equivalent(
                            &format!("{kb_name}/{prog_name}/c{clusters}/{scheme:?}/{engine:?}"),
                            &oracle.collects,
                            &report.collects,
                        );
                    }
                }
            }
        }
    }
}

/// The threaded engine closes fault-free propagation phases through the
/// counting gate (no barrier round) and falls back to the tiered
/// barrier whenever a fault injector is armed. Both termination paths
/// must produce oracle-identical results on awkward (non-power-of-two)
/// cluster counts — an armed-but-silent fault plan forces the tiered
/// path without perturbing a single message, and a lossy plan exercises
/// it under real retries.
#[test]
fn differential_fast_gate_and_tiered_barrier_agree() {
    for &(kb_name, kb) in KBS {
        for (prog_name, program) in &programs() {
            let oracle = run_cell(kb, program, 2, EngineKind::Sequential, None, false);
            for clusters in [2, 5, 6, 7] {
                let label = format!("{kb_name}/{prog_name}/c{clusters}");
                // Fast path: no injector, counting-gate termination.
                let fast = run_cell_cfg(kb, program, clusters, EngineKind::Threaded, |c| {
                    c.partition = PartitionScheme::EdgeCut;
                });
                assert_equivalent(
                    &format!("{label}/fast-gate"),
                    &oracle.collects,
                    &fast.collects,
                );
                // Tiered path, zero injected faults: pure termination A/B.
                let tiered = run_cell_cfg(kb, program, clusters, EngineKind::Threaded, |c| {
                    c.partition = PartitionScheme::EdgeCut;
                    c.fault_plan = Some(FaultPlan::seeded(0xD1FF));
                });
                assert_equivalent(
                    &format!("{label}/tiered-quiet"),
                    &oracle.collects,
                    &tiered.collects,
                );
                // Tiered path under drops: ack/retry must still converge
                // to the oracle.
                let lossy = run_cell_cfg(kb, program, clusters, EngineKind::Threaded, |c| {
                    c.partition = PartitionScheme::EdgeCut;
                    c.fault_plan = Some(FaultPlan::seeded(0x5EED).drops(0.05));
                });
                assert_equivalent(
                    &format!("{label}/tiered-lossy"),
                    &oracle.collects,
                    &lossy.collects,
                );
            }
        }
    }
}

/// Phase-sequence comparison needs recorded traces, which need the
/// `obs` feature (tracing compiles to no-ops without it).
#[cfg(feature = "obs")]
mod obs {
    use super::*;
    use snap_core::PhaseKind;
    use snap_integration_tests::grid::{kb_chain, kb_tree, program_parse};

    /// On unique-path topologies the per-phase activation counts are
    /// engine-independent, so equivalent engines must produce fully
    /// aligned phase sequences (no diverging phase).
    #[test]
    fn phase_sequences_align_across_engines() {
        for (prog_name, program) in &programs() {
            for &clusters in CLUSTER_COUNTS {
                let oracle = run_cell(
                    kb_tree,
                    program,
                    clusters,
                    EngineKind::Sequential,
                    None,
                    true,
                );
                let des = run_cell(kb_tree, program, clusters, EngineKind::Des, None, true);
                let threaded =
                    run_cell(kb_tree, program, clusters, EngineKind::Threaded, None, true);

                assert!(oracle.trace.enabled, "oracle trace disabled");
                assert!(!oracle.trace.phases.is_empty(), "oracle recorded no phases");
                assert_eq!(
                    oracle.trace.first_diverging_phase(&des.trace),
                    None,
                    "[tree/{prog_name}/c{clusters}] sequential vs des phases: {:?} vs {:?}",
                    oracle.trace.phases,
                    des.trace.phases,
                );
                assert_eq!(
                    oracle.trace.first_diverging_phase(&threaded.trace),
                    None,
                    "[tree/{prog_name}/c{clusters}] sequential vs threaded phases: {:?} vs {:?}",
                    oracle.trace.phases,
                    threaded.trace.phases,
                );
            }
        }
    }

    /// Cutting the hop budget to 1 truncates propagation: the harness
    /// must localize the divergence to the first `Propagate` phase.
    #[test]
    fn perturbation_localizes_to_first_propagate_phase() {
        let program = program_parse();
        let baseline = run_cell(kb_chain, &program, 2, EngineKind::Des, None, true);
        let perturbed = run_cell(kb_chain, &program, 2, EngineKind::Des, Some(1), true);

        let expected = baseline
            .trace
            .phases
            .iter()
            .position(|p| p.kind == PhaseKind::Propagate)
            .expect("baseline has a Propagate phase");
        let diverged = baseline.trace.first_diverging_phase(&perturbed.trace);
        assert_eq!(
            diverged,
            Some(expected),
            "divergence not localized to the first Propagate phase; baseline {:?} perturbed {:?}",
            baseline.trace.phases,
            perturbed.trace.phases,
        );
    }

    /// The same perturbation must also localize on the threaded
    /// engine's wall-clock-stamped trace (stamps differ, phase counts
    /// must not).
    #[test]
    fn perturbation_localizes_on_threaded_engine() {
        let program = program_parse();
        let baseline = run_cell(kb_chain, &program, 2, EngineKind::Threaded, None, true);
        let perturbed = run_cell(kb_chain, &program, 2, EngineKind::Threaded, Some(1), true);

        let expected = baseline
            .trace
            .phases
            .iter()
            .position(|p| p.kind == PhaseKind::Propagate)
            .expect("baseline has a Propagate phase");
        assert_eq!(
            baseline.trace.first_diverging_phase(&perturbed.trace),
            Some(expected),
            "baseline {:?} perturbed {:?}",
            baseline.trace.phases,
            perturbed.trace.phases,
        );
    }

    /// Without a trace config the report stays empty even when the
    /// feature is compiled in (runtime gating).
    #[test]
    fn trace_stays_empty_without_config() {
        let report = run_cell(kb_tree, &program_parse(), 2, EngineKind::Des, None, false);
        assert!(report.trace.is_empty());
    }
}
