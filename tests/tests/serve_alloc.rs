//! Zero-allocation steady-state serving.
//!
//! The serving layer's claim is that once its pools are warm — pending
//! entries, query contexts, kernel scratch, report maps — a
//! [`Server::pump_with`] cycle serves every query without touching the
//! heap. This test makes the claim falsifiable: a counting global
//! allocator (enabled by the `alloc-count` cargo feature, so the
//! counter never taxes the rest of the suite) is armed after a warm-up
//! phase, and the measured drain must record **zero** allocations.
//!
//! Admission is measured separately from the drain: `offer` pays one
//! rule compilation per propagate instruction to decide fusibility, so
//! the zero-allocation invariant is pinned to the pump — the hot path
//! the saturated-throughput bench times.

#![cfg(feature = "alloc-count")]

use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::synth::scale_free_network;
use snap_kb::{Marker, NodeId, RelationType};
use snap_serve::{Admission, ServeConfig, Server};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Passes everything through to the system allocator, counting
/// allocations (not deallocations: returning pooled memory is fine,
/// taking new memory is what the steady-state invariant forbids) while
/// `COUNTING` is armed.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The bench's parse-style query shape: all instances fuse.
fn query(node: u32) -> Program {
    Program::builder()
        .search_node(NodeId(node), Marker::binary(1), 0.0)
        .propagate(
            Marker::binary(1),
            Marker::complex(2),
            PropRule::Star(RelationType(0)),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(2))
        .build()
}

#[test]
fn steady_state_pump_allocates_nothing_per_query() {
    let mut net = scale_free_network(300, 2, 11);
    net.flush_links();
    let cfg = ServeConfig {
        max_batch: 8,
        ..ServeConfig::default()
    };
    let mut server = Server::new(Arc::new(net), cfg).unwrap();
    // Distinct seeds so every query takes its own lane (no coalescing
    // shortcut) and the batch runs the full sliced kernel.
    let seeds = [0u32, 17, 42, 99, 123, 200, 250, 299];
    let programs: Vec<Program> = seeds.iter().map(|&n| query(n)).collect();

    // Warm-up: several full offer-and-drain rounds grow every pool to
    // its steady-state footprint (contexts, scratch planes, report
    // maps, recycled pending slots, the compiled-rule cache).
    for _ in 0..3 {
        for p in &programs {
            assert!(matches!(server.offer(p.clone()), Admission::Admitted(_)));
        }
        while server.queue_len() > 0 {
            server.pump_with(|c| {
                c.result.expect("warm-up query succeeds");
            });
        }
    }

    // Measured round: programs are cloned and offered before the
    // counter is armed (building a Program allocates; admission compiles
    // rules for the fusibility check), then the drain — the path the
    // throughput bench times — runs under the armed counter.
    for p in &programs {
        assert!(matches!(server.offer(p.clone()), Admission::Admitted(_)));
    }
    let mut served = 0u64;
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    while server.queue_len() > 0 {
        server.pump_with(|c| {
            assert!(c.result.is_ok(), "measured query succeeds");
            served += 1;
        });
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(served, seeds.len() as u64, "every offer completed");
    assert_eq!(
        allocs, 0,
        "steady-state pump allocated {allocs} time(s) serving {served} queries"
    );
    server.assert_accounting();
}
