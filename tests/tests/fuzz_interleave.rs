//! The interleaving fuzzer against the differential grid.
//!
//! A seeded `ScheduleStrategy::Fuzzed` schedule permutes every ordering
//! a legal but adversarial machine could choose — ready-task picks,
//! equal-time event ties, worker fabric-vs-queue polling, fabric
//! delivery order, gate protocol and gate-close timing — while the
//! marker-propagation semantics guarantee results must not change. Any
//! divergence from the FIFO sequential oracle is therefore a real
//! ordering bug, and the harness shrinks it to the minimal fuzzed
//! decision prefix (`limit` bisection) plus a replayable JSON repro.
//!
//! The sweep width follows the `FUZZ_SEEDS` env var (like
//! `CHAOS_SEEDS` in the chaos tests); CI smoke jobs trim it.
//!
//! With the `fuzz-bug` feature the engines carry a planted ordering bug
//! (a reordered ready-pool pick silently drops its expansion's
//! arrivals); the clean-sweep tests are compiled out and replaced by
//! the catch-and-shrink test, which demands the fuzzer find the plant.

use snap_core::{EngineKind, ScheduleStrategy};
use snap_integration_tests::{fuzz, grid};

/// Same seed ⇒ same interleaving ⇒ same `RunReport`: collects and the
/// schedule digest (the fold of every schedule decision drawn on the
/// deterministic control stream) must replay bit-identically.
///
/// With the planted bug compiled in the threaded engine is excluded:
/// the plant makes collects depend on the worker streams' draw counts,
/// which follow thread timing — exactly the class of defect the fuzzer
/// exists to catch, but fatal to a bit-replay assertion.
#[test]
fn fuzzed_schedule_replays_deterministically() {
    #[cfg(feature = "fuzz-bug")]
    let engines = &[EngineKind::Sequential, EngineKind::Des];
    #[cfg(not(feature = "fuzz-bug"))]
    let engines = fuzz::ENGINES;
    for &engine in engines {
        let run = || {
            grid::run_cell_cfg(grid::kb_chain, &grid::program_parse(), 2, engine, |c| {
                c.schedule = ScheduleStrategy::fuzzed(11);
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(
            grid::check_equivalent(&a.collects, &b.collects),
            None,
            "{engine:?}: same seed must reproduce the same collects"
        );
        assert_eq!(
            a.schedule_digest, b.schedule_digest,
            "{engine:?}: same seed must reproduce the same decision digest"
        );
    }
}

/// FIFO draws no schedule decisions (digest 0); a fuzzed schedule
/// draws and fingerprints them, and different seeds fingerprint
/// differently on the single-threaded engines.
#[test]
fn schedule_digest_fingerprints_the_schedule() {
    let digest = |engine, schedule| {
        grid::run_cell_cfg(grid::kb_chain, &grid::program_parse(), 2, engine, |c| {
            c.schedule = schedule;
        })
        .schedule_digest
    };
    for &engine in fuzz::ENGINES {
        assert_eq!(
            digest(engine, ScheduleStrategy::Fifo),
            0,
            "{engine:?}: FIFO must not draw decisions"
        );
        assert_ne!(
            digest(engine, ScheduleStrategy::fuzzed(3)),
            0,
            "{engine:?}: a fuzzed run must fingerprint its decisions"
        );
    }
    for engine in [EngineKind::Sequential, EngineKind::Des] {
        assert_ne!(
            digest(engine, ScheduleStrategy::fuzzed(3)),
            digest(engine, ScheduleStrategy::fuzzed(4)),
            "{engine:?}: different seeds must fingerprint differently"
        );
    }
}

#[cfg(not(feature = "fuzz-bug"))]
mod clean {
    use super::*;
    use snap_core::FaultPlan;

    /// The headline sweep: N seeds × the fuzz grid × 3 engines, every
    /// cell compared against the FIFO sequential oracle. On divergence
    /// the harness shrinks to the minimal repro, writes the JSON
    /// artifact, and fails with the replay line.
    #[test]
    fn fuzz_sweep_differential_grid_is_clean() {
        let seeds = fuzz::seed_count(8);
        if let Some(d) = fuzz::sweep(seeds).into_iter().next() {
            let minimal = fuzz::shrink(&d);
            let path = fuzz::write_repro(&d, &minimal);
            panic!(
                "interleaving fuzzer found an ordering bug (repro: {}):\n  full:    {d}\n  minimal: {minimal}",
                path.display()
            );
        }
    }

    /// A fuzzed schedule composes with fault injection: the reorder
    /// hook, the (injector-forced) tiered barrier, and the ack/retry
    /// protocol together must still converge to the oracle.
    #[test]
    fn fuzzed_schedule_composes_with_fault_injection() {
        let program = grid::program_parse();
        let oracle = grid::run_cell(
            grid::kb_chain,
            &program,
            2,
            EngineKind::Sequential,
            None,
            false,
        );
        let mut injected = 0;
        for seed in 0..4 {
            let report =
                grid::run_cell_cfg(grid::kb_chain, &program, 5, EngineKind::Threaded, |c| {
                    c.schedule = ScheduleStrategy::fuzzed(seed);
                    c.fault_plan = Some(FaultPlan::seeded(seed ^ 0xFA17).drops(0.1));
                });
            grid::assert_equivalent(
                &format!("chain/parse/c5/fuzzed{seed}+drops"),
                &oracle.collects,
                &report.collects,
            );
            injected += report.faults.total_injected();
        }
        assert!(injected > 0, "no seed injected a single fault");
    }
}

#[cfg(feature = "fuzz-bug")]
mod planted {
    use super::*;

    /// The fuzzer must catch the planted ordering bug (a reordered
    /// ready-pool pick drops its expansion's arrivals) and shrink it to
    /// a boundary-verified minimal decision prefix: the divergence
    /// reproduces at `limit` and vanishes at `limit - 1`.
    #[test]
    fn planted_bug_is_caught_and_shrunk() {
        // The sequential engine makes the whole hunt deterministic;
        // nearly every seed reorders some pick on these KBs.
        let found = (0..32).find_map(|seed| fuzz::check_seed_on(seed, EngineKind::Sequential));
        let d = found.expect("planted bug escaped a 32-seed sweep");

        let minimal = fuzz::shrink(&d);
        assert!(
            minimal.limit >= 1,
            "limit 0 is pure FIFO and must not diverge"
        );
        assert!(
            fuzz::recheck(&minimal, minimal.limit).is_some(),
            "minimal repro must reproduce at its own limit"
        );
        assert!(
            fuzz::recheck(&minimal, minimal.limit - 1).is_none(),
            "shrink boundary is not minimal: limit {} also diverges",
            minimal.limit - 1
        );

        let path = fuzz::write_repro(&d, &minimal);
        let written = std::fs::read_to_string(&path).expect("repro artifact written");
        assert!(
            written.contains("minimal_limit") && written.contains("Fuzzed"),
            "repro artifact missing replay info: {written}"
        );
        println!("caught and shrunk: {minimal}\nrepro at {}", path.display());
    }

    /// The plant is schedule-gated: under FIFO (never reorders) the
    /// bugged build still matches the oracle everywhere, so the normal
    /// suite stays green even with the feature compiled in.
    #[test]
    fn planted_bug_is_inert_under_fifo() {
        for &(label, kb) in &[
            ("chain", grid::kb_chain as grid::KbBuilder),
            ("web", grid::kb_web),
        ] {
            let program = grid::program_parse();
            let oracle = grid::run_cell(kb, &program, 2, EngineKind::Sequential, None, false);
            for &engine in fuzz::ENGINES {
                let report = grid::run_cell_cfg(kb, &program, 2, engine, |c| {
                    c.schedule = ScheduleStrategy::Fifo;
                });
                grid::assert_equivalent(
                    &format!("{label}/fifo-inert/{engine:?}"),
                    &oracle.collects,
                    &report.collects,
                );
            }
        }
    }
}
