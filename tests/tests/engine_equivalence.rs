//! Property-based cross-engine equivalence: the sequential reference,
//! the discrete-event simulator, the threaded engine, and the CM-2
//! baseline must produce identical logical results for any program in
//! the monotone fragment (non-negative weights, value-decreasing-free
//! step functions), per the engine semantics contract in DESIGN.md.

use proptest::prelude::*;
use snap_baseline::Cm2;
use snap_core::{CollectOutput, EngineKind, Snap1};
use snap_isa::{CombineFunc, Program, PropRule, StepFunc, ValueFunc};
use snap_kb::{
    Color, Marker, NetworkConfig, NodeId, PartitionScheme, RelationType, SemanticNetwork,
};

#[derive(Debug, Clone)]
struct NetSpec {
    nodes: usize,
    links: Vec<(u32, u16, u32, u32)>, // (src, rel, weight_milli, dst)
}

fn net_strategy() -> impl Strategy<Value = NetSpec> {
    // Modest sizes: equal-value origin tie-breaking makes worst-case
    // propagation quadratic, and this test runs every engine.
    (8usize..36).prop_flat_map(|nodes| {
        let links = proptest::collection::vec(
            (
                0u32..nodes as u32,
                0u16..4,
                1u32..3000, // strictly positive weights: few value ties
                0u32..nodes as u32,
            ),
            0..nodes * 2,
        );
        links.prop_map(move |links| NetSpec { nodes, links })
    })
}

fn build_net(spec: &NetSpec) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for i in 0..spec.nodes {
        net.add_node(Color((i % 5) as u8)).unwrap();
    }
    for &(s, r, w, d) in &spec.links {
        net.add_link(NodeId(s), RelationType(r), w as f32 / 1000.0, NodeId(d))
            .unwrap();
    }
    net
}

#[derive(Debug, Clone)]
enum Op {
    SearchColor(u8, u8),
    SearchNode(u32, u8),
    Propagate(u8, u8, u8, u16, u16),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Not(u8, u8),
    Set(u8),
    Clear(u8),
    Threshold(u8, u32),
    Collect(u8),
}

fn op_strategy(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, 0u8..8).prop_map(|(c, m)| Op::SearchColor(c, m)),
        (0u32..nodes as u32, 0u8..8).prop_map(|(n, m)| Op::SearchNode(n, m)),
        (0u8..8, 0u8..8, 0u8..4, 0u16..4, 0u16..4)
            .prop_map(|(s, t, rule, r1, r2)| Op::Propagate(s, t, rule, r1, r2)),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(a, b, t)| Op::And(a, b, t)),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(a, b, t)| Op::Or(a, b, t)),
        (0u8..8, 0u8..8).prop_map(|(s, t)| Op::Not(s, t)),
        (0u8..8).prop_map(Op::Set),
        (0u8..8).prop_map(Op::Clear),
        (0u8..8, 0u32..4000).prop_map(|(m, t)| Op::Threshold(m, t)),
        (0u8..8).prop_map(Op::Collect),
    ]
}

fn build_program(ops: &[Op], nodes: usize) -> Program {
    let mk = |i: u8| Marker::complex(i); // complex markers exercise values
    let mut b = Program::builder();
    for op in ops {
        b = match *op {
            Op::SearchColor(c, m) => b.search_color(Color(c), mk(m), 0.0),
            Op::SearchNode(n, m) => b.search_node(NodeId(n % nodes as u32), mk(m), 0.0),
            Op::Propagate(s, t, rule, r1, r2) => {
                let rule = match rule {
                    0 => PropRule::Star(RelationType(r1)),
                    1 => PropRule::Once(RelationType(r1)),
                    2 => PropRule::Spread(RelationType(r1), RelationType(r2)),
                    _ => PropRule::Union(RelationType(r1), RelationType(r2)),
                };
                b.propagate(mk(s), mk(t), rule, StepFunc::AddWeight)
            }
            Op::And(a, x, t) => b.and_marker(mk(a), mk(x), mk(t), CombineFunc::Min),
            Op::Or(a, x, t) => b.or_marker(mk(a), mk(x), mk(t), CombineFunc::Min),
            Op::Not(s, t) => b.not_marker(mk(s), mk(t)),
            Op::Set(m) => b.set_marker(mk(m), 1.0),
            Op::Clear(m) => b.clear_marker(mk(m)),
            Op::Threshold(m, t) => b.func_marker(
                mk(m),
                ValueFunc::ClearIf(snap_isa::Cmp::Gt, t as f32 / 1000.0),
            ),
            Op::Collect(m) => b.collect_marker(mk(m)),
        };
    }
    // Always end with a deterministic observation of every marker.
    for m in 0..8 {
        b = b.collect_marker(mk(m));
    }
    b.build()
}

/// Compares collect outputs; values compared with a small tolerance
/// (different engines order float additions differently).
fn assert_equivalent(kind: &str, a: &[CollectOutput], b: &[CollectOutput]) {
    assert_eq!(a.len(), b.len(), "[{kind}] collect count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.node_ids(),
            y.node_ids(),
            "[{kind}] collect #{i} node sets"
        );
        if let (CollectOutput::Nodes(xs), CollectOutput::Nodes(ys)) = (x, y) {
            for ((n1, v1), (n2, v2)) in xs.iter().zip(ys) {
                assert_eq!(n1, n2);
                let (v1, v2) = (v1.map_or(0.0, |v| v.value), v2.map_or(0.0, |v| v.value));
                assert!(
                    (v1 - v2).abs() < 1e-3,
                    "[{kind}] collect #{i} value at {n1}: {v1} vs {v2}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_on_random_programs(
        spec in net_strategy(),
        ops in proptest::collection::vec(op_strategy(36), 1..12),
        clusters in 1usize..6,
        scheme in prop_oneof![
            Just(PartitionScheme::Sequential),
            Just(PartitionScheme::RoundRobin),
            Just(PartitionScheme::Semantic),
        ],
    ) {
        let program = build_program(&ops, spec.nodes);

        let run = |engine: EngineKind| {
            let mut net = build_net(&spec);
            let machine = Snap1::builder()
                .clusters(clusters)
                .partition(scheme)
                .engine(engine)
                .build();
            machine.run(&mut net, &program).expect("run").collects
        };
        let sequential = run(EngineKind::Sequential);
        let des = run(EngineKind::Des);
        let threaded = run(EngineKind::Threaded);
        let cm2 = {
            let mut net = build_net(&spec);
            Cm2::new().run(&mut net, &program).expect("cm2").collects
        };

        assert_equivalent("des", &sequential, &des);
        assert_equivalent("threaded", &sequential, &threaded);
        assert_equivalent("cm2", &sequential, &cm2);
    }
}
