//! Serve isolation differential: queries answered through the batching
//! server — fused lanes, coalesced duplicates, pooled contexts — must be
//! indistinguishable from the same queries run serially, one at a time,
//! on the sequential engine. Collects, expansions, and local
//! activations are compared exactly per query.
//!
//! Two layers:
//!
//! * a **deterministic grid** over the shared KB axis × batch depth
//!   {1, 4, 16} × both phase-closure gate kinds (the counting fast gate
//!   and the tiered barrier, forced via the tracing knob on a threaded
//!   cross-check of the same queries);
//! * a **proptest sweep** over fuzzed networks and programs, offering
//!   each random program several times so batches mix duplicates (the
//!   coalescing path) with distinct shapes (the splitting path).

use proptest::prelude::*;
use snap_core::{CoreError, EngineKind, MachineConfig, RunReport, Snap1};
use snap_integration_tests::grid;
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{Color, Marker, NetworkConfig, NodeId, RelationType, SemanticNetwork};
use snap_serve::{Admission, BatchKernel, Completion, ServeConfig, Server};
use std::sync::Arc;

const DEPTHS: [usize; 3] = [1, 4, 16];

/// The serial one-query-at-a-time oracle, configured exactly as the
/// server configures its internal fallback engine.
fn serial_oracle(cfg: &ServeConfig) -> Snap1 {
    Snap1::builder()
        .config(MachineConfig {
            max_hops: cfg.max_hops,
            ..MachineConfig::snap1_eval()
        })
        .cost(cfg.cost.clone())
        .engine(EngineKind::Sequential)
        .build()
}

/// Asserts one served completion is indistinguishable from running its
/// program alone on the sequential engine: identical collects,
/// expansions, and local activations (and identical typed error, when
/// the program fails).
fn assert_isolated(label: &str, c: &Completion, want: &Result<RunReport, CoreError>) {
    match (&c.result, want) {
        (Ok(got), Ok(want)) => {
            assert_eq!(got.collects, want.collects, "[{label}] collects");
            assert_eq!(got.expansions, want.expansions, "[{label}] expansions");
            assert_eq!(
                got.traffic.local_activations, want.traffic.local_activations,
                "[{label}] local activations"
            );
        }
        (Err(got), Err(want)) => assert_eq!(got, want, "[{label}] error"),
        (got, want) => panic!("[{label}] served {got:?} but serial oracle says {want:?}"),
    }
}

/// Serves `programs` (each repeated `copies` times, round-robin so
/// batches interleave shapes) at `depth`, returning completions paired
/// with the index of the program they carried.
fn serve_all(
    net: &Arc<SemanticNetwork>,
    programs: &[Program],
    copies: usize,
    depth: usize,
) -> Vec<(usize, Completion)> {
    let total = programs.len() * copies;
    let cfg = ServeConfig {
        max_batch: depth,
        queue_capacity: total,
        ..ServeConfig::default()
    };
    let mut server = Server::new(Arc::clone(net), cfg).expect("flushed snapshot");
    let mut offered: Vec<usize> = Vec::with_capacity(total);
    for _ in 0..copies {
        for (pi, p) in programs.iter().enumerate() {
            match server.offer(p.clone()) {
                Admission::Admitted(id) => {
                    assert_eq!(id.0 as usize, offered.len(), "IDs are dense");
                    offered.push(pi);
                }
                Admission::Shed(why) => panic!("capacity covers all offers: {why:?}"),
            }
        }
    }
    let done = server.drain();
    server.assert_accounting();
    assert_eq!(done.len(), total, "every admitted query completes");
    done.into_iter()
        .map(|c| (offered[c.id.0 as usize], c))
        .collect()
}

/// The deterministic grid: shared KBs × batch depth × gate kind. The
/// gate axis forces the threaded engine's two phase-closure protocols —
/// the counting fast gate (clean FIFO) and the tiered barrier (tracing
/// requires per-level attribution) — on a cross-check of the same
/// queries, so served results agree with both closure paths, not just
/// the serial reference.
#[test]
fn served_batches_match_serial_runs_across_grid() {
    let programs: Vec<(&str, Program)> = grid::programs();
    for &(kb_name, kb) in grid::KBS {
        let mut raw = kb();
        raw.flush_links();
        let net = Arc::new(raw);
        let serve_cfg = ServeConfig::default();
        let oracle = serial_oracle(&serve_cfg);
        let serial: Vec<Result<RunReport, CoreError>> = programs
            .iter()
            .map(|(_, p)| oracle.run_shared(&net, p))
            .collect();
        for depth in DEPTHS {
            for (gate, trace) in [("counting", false), ("tiered", true)] {
                let label = |pname: &str| format!("{kb_name}/{pname}/depth{depth}/{gate}");
                let all: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
                for (pi, c) in serve_all(&net, &all, 4, depth) {
                    assert_isolated(&label(programs[pi].0), &c, &serial[pi]);
                }
                // Gate-kind cross-check: the same programs, one at a
                // time, on the threaded engine with this phase-closure
                // protocol; logical results must match the serial
                // reference the server was held to.
                let mut cfg = MachineConfig::uniform(2, 3);
                cfg.max_hops = serve_cfg.max_hops;
                if trace {
                    cfg.trace = Some(snap_core::ObsConfig::counters_only());
                }
                let threaded = Snap1::builder()
                    .config(cfg)
                    .engine(EngineKind::Threaded)
                    .build();
                for ((pname, p), want) in programs.iter().zip(&serial) {
                    let got = threaded.run_shared(&net, p).expect("threaded run");
                    let want = want.as_ref().expect("grid programs succeed");
                    grid::assert_equivalent(&label(pname), &got.collects, &want.collects);
                }
            }
        }
    }
}

// ---- proptest sweep over fuzzed networks and programs ----

#[derive(Debug, Clone)]
struct NetSpec {
    nodes: usize,
    links: Vec<(u32, u16, u32, u32)>, // (src, rel, weight_milli, dst)
}

fn net_strategy() -> impl Strategy<Value = NetSpec> {
    (8usize..32).prop_flat_map(|nodes| {
        let links = proptest::collection::vec(
            (
                0u32..nodes as u32,
                0u16..4,
                1u32..3000, // strictly positive weights: few value ties
                0u32..nodes as u32,
            ),
            0..nodes * 2,
        );
        links.prop_map(move |links| NetSpec { nodes, links })
    })
}

fn build_net(spec: &NetSpec) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for i in 0..spec.nodes {
        net.add_node(Color((i % 5) as u8)).unwrap();
    }
    for &(s, r, w, d) in &spec.links {
        net.add_link(NodeId(s), RelationType(r), w as f32 / 1000.0, NodeId(d))
            .unwrap();
    }
    net.flush_links();
    net
}

/// One random query: seed a node, propagate under a random rule, observe
/// the target marker. Shapes differ across rules, so a served stream of
/// these exercises same-shape fusion, shape splitting, the non-fusable
/// solo fallback, and (via repeats) duplicate coalescing.
#[derive(Debug, Clone)]
struct QuerySpec {
    seed: u32,
    rule: u8,
    rels: (u16, u16),
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (any::<u32>(), 0u8..4, (0u16..4, 0u16..4)).prop_map(|(seed, rule, rels)| QuerySpec {
        seed,
        rule,
        rels,
    })
}

fn build_query(q: &QuerySpec, nodes: usize) -> Program {
    let rule = match q.rule {
        0 => PropRule::Star(RelationType(q.rels.0)),
        1 => PropRule::Once(RelationType(q.rels.0)),
        2 => PropRule::Spread(RelationType(q.rels.0), RelationType(q.rels.1)),
        _ => PropRule::Union(RelationType(q.rels.0), RelationType(q.rels.1)),
    };
    Program::builder()
        .search_node(NodeId(q.seed % nodes as u32), Marker::complex(1), 0.0)
        .propagate(
            Marker::complex(1),
            Marker::complex(2),
            rule,
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(2))
        .collect_marker(Marker::complex(1))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn served_batches_match_serial_runs_on_fuzzed_inputs(
        spec in net_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..6),
        depth in prop_oneof![Just(1usize), Just(4), Just(16)],
    ) {
        let net = Arc::new(build_net(&spec));
        let programs: Vec<Program> =
            queries.iter().map(|q| build_query(q, spec.nodes)).collect();
        let serve_cfg = ServeConfig::default();
        let oracle = serial_oracle(&serve_cfg);
        let serial: Vec<Result<RunReport, CoreError>> = programs
            .iter()
            .map(|p| oracle.run_shared(&net, p))
            .collect();
        for (pi, c) in serve_all(&net, &programs, 3, depth) {
            assert_isolated(&format!("fuzzed #{pi} depth {depth}"), &c, &serial[pi]);
        }
    }

    /// Kernel differential at the serving layer: the bit-sliced
    /// lane-parallel kernel and the per-lane replay kernel (the
    /// executable spec) must produce byte-identical completions — same
    /// IDs, same batch depths, same full reports (collects, traffic,
    /// simulated nanoseconds) or same typed errors — for the same offer
    /// stream. Depth 64 pins the widest sliced batch (one lane-mask
    /// word, `MAX_SLICED_LANES`).
    #[test]
    fn sliced_and_replay_kernels_serve_identical_completions(
        spec in net_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..8),
        depth in prop_oneof![Just(1usize), Just(4), Just(16), Just(64)],
    ) {
        let net = Arc::new(build_net(&spec));
        let programs: Vec<Program> =
            queries.iter().map(|q| build_query(q, spec.nodes)).collect();
        let copies = 3;
        let total = programs.len() * copies;
        let make = |kernel| {
            let cfg = ServeConfig {
                max_batch: depth,
                queue_capacity: total,
                kernel,
                ..ServeConfig::default()
            };
            Server::new(Arc::clone(&net), cfg).expect("flushed snapshot")
        };
        let mut sliced = make(BatchKernel::Sliced);
        let mut replay = make(BatchKernel::Replay);
        for _ in 0..copies {
            for p in &programs {
                assert!(matches!(sliced.offer(p.clone()), Admission::Admitted(_)));
                assert!(matches!(replay.offer(p.clone()), Admission::Admitted(_)));
            }
        }
        let a = sliced.drain();
        let b = replay.drain();
        sliced.assert_accounting();
        replay.assert_accounting();
        assert_eq!(a.len(), b.len(), "completion counts diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "completion order diverged");
            assert_eq!(x.batch_depth, y.batch_depth, "batch formation diverged");
            match (&x.result, &y.result) {
                (Ok(gx), Ok(gy)) => assert_eq!(gx, gy, "reports diverged for {:?}", x.id),
                (Err(ex), Err(ey)) => assert_eq!(ex, ey, "errors diverged for {:?}", x.id),
                (gx, gy) => panic!("sliced says {gx:?} but replay says {gy:?}"),
            }
        }
    }
}
