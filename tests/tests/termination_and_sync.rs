//! Tiered-synchronization safety under real concurrency: the threaded
//! engine's barrier must never complete while marker work is pending,
//! across repeated runs, deep chains, and heavy fan-out.

use snap_core::{EngineKind, Snap1};
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{
    Color, Marker, NetworkConfig, NodeId, PartitionScheme, RelationType, SemanticNetwork,
};

const REL: RelationType = RelationType(1);

/// A deep chain: termination depends on counting multi-hop forwarding
/// correctly (the case a naive idle-check gets wrong).
fn chain(n: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for i in 0..n {
        net.add_node(Color(u8::from(i == 0))).unwrap();
    }
    for i in 0..n - 1 {
        net.add_link(NodeId(i as u32), REL, 1.0, NodeId(i as u32 + 1))
            .unwrap();
    }
    net
}

/// A two-level fan-out tree: 1 → k → k² bursts the network.
fn burst_tree(fanout: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let root = net.add_node(Color(1)).unwrap();
    for _ in 0..fanout {
        let mid = net.add_node(Color(0)).unwrap();
        net.add_link(root, REL, 1.0, mid).unwrap();
        for _ in 0..fanout {
            let leaf = net.add_node(Color(0)).unwrap();
            net.add_link(mid, REL, 1.0, leaf).unwrap();
        }
    }
    net
}

fn walk() -> Program {
    Program::builder()
        .search_color(Color(1), Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::binary(1),
            PropRule::Star(REL),
            StepFunc::Identity,
        )
        .collect_marker(Marker::binary(1))
        .build()
}

#[test]
fn deep_chain_fully_traversed_before_collect() {
    // If the barrier fired early, COLLECT would see a partial frontier.
    let machine = Snap1::builder()
        .clusters(8)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    for _ in 0..10 {
        let mut net = chain(40);
        let report = machine.run(&mut net, &walk()).unwrap();
        assert_eq!(report.collects[0].len(), 39, "all 39 downstream nodes reached");
    }
}

#[test]
fn burst_fanout_fully_absorbed() {
    let machine = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    for _ in 0..5 {
        let mut net = burst_tree(20);
        let report = machine.run(&mut net, &walk()).unwrap();
        assert_eq!(report.collects[0].len(), 20 + 20 * 20);
        assert!(report.traffic.total_messages > 0, "bursts cross clusters");
    }
}

#[test]
fn explicit_barriers_are_counted() {
    let mut net = chain(10);
    let program = Program::builder()
        .barrier()
        .search_color(Color(1), Marker::binary(0), 0.0)
        .barrier()
        .build();
    let machine = Snap1::builder().clusters(2).engine(EngineKind::Threaded).build();
    let report = machine.run(&mut net, &program).unwrap();
    assert_eq!(report.barriers, 2);
}

#[test]
fn repeated_runs_are_logically_deterministic() {
    let machine = Snap1::builder()
        .clusters(8)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    let mut reference = None;
    for _ in 0..8 {
        let mut net = burst_tree(8);
        let report = machine.run(&mut net, &walk()).unwrap();
        let ids = report.collects[0].node_ids();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(r, &ids, "thread scheduling must not change results"),
        }
    }
}
