//! Tiered-synchronization safety under real concurrency: the threaded
//! engine's barrier must never complete while marker work is pending,
//! across repeated runs, deep chains, and heavy fan-out.

use snap_core::{EngineKind, Snap1};
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{
    Color, Marker, NetworkConfig, NodeId, PartitionScheme, RelationType, SemanticNetwork,
};

const REL: RelationType = RelationType(1);

/// A deep chain: termination depends on counting multi-hop forwarding
/// correctly (the case a naive idle-check gets wrong).
fn chain(n: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for i in 0..n {
        net.add_node(Color(u8::from(i == 0))).unwrap();
    }
    for i in 0..n - 1 {
        net.add_link(NodeId(i as u32), REL, 1.0, NodeId(i as u32 + 1))
            .unwrap();
    }
    net
}

/// A two-level fan-out tree: 1 → k → k² bursts the network.
fn burst_tree(fanout: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let root = net.add_node(Color(1)).unwrap();
    for _ in 0..fanout {
        let mid = net.add_node(Color(0)).unwrap();
        net.add_link(root, REL, 1.0, mid).unwrap();
        for _ in 0..fanout {
            let leaf = net.add_node(Color(0)).unwrap();
            net.add_link(mid, REL, 1.0, leaf).unwrap();
        }
    }
    net
}

fn walk() -> Program {
    Program::builder()
        .search_color(Color(1), Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::binary(1),
            PropRule::Star(REL),
            StepFunc::Identity,
        )
        .collect_marker(Marker::binary(1))
        .build()
}

#[test]
fn deep_chain_fully_traversed_before_collect() {
    // If the barrier fired early, COLLECT would see a partial frontier.
    let machine = Snap1::builder()
        .clusters(8)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    for _ in 0..10 {
        let mut net = chain(40);
        let report = machine.run(&mut net, &walk()).unwrap();
        assert_eq!(
            report.collects[0].len(),
            39,
            "all 39 downstream nodes reached"
        );
    }
}

#[test]
fn burst_fanout_fully_absorbed() {
    let machine = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    for _ in 0..5 {
        let mut net = burst_tree(20);
        let report = machine.run(&mut net, &walk()).unwrap();
        assert_eq!(report.collects[0].len(), 20 + 20 * 20);
        assert!(report.traffic.total_messages > 0, "bursts cross clusters");
    }
}

#[test]
fn explicit_barriers_are_counted() {
    let mut net = chain(10);
    let program = Program::builder()
        .barrier()
        .search_color(Color(1), Marker::binary(0), 0.0)
        .barrier()
        .build();
    let machine = Snap1::builder()
        .clusters(2)
        .engine(EngineKind::Threaded)
        .build();
    let report = machine.run(&mut net, &program).unwrap();
    assert_eq!(report.barriers, 2);
}

#[test]
fn repeated_runs_are_logically_deterministic() {
    let machine = Snap1::builder()
        .clusters(8)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    let mut reference = None;
    for _ in 0..8 {
        let mut net = burst_tree(8);
        let report = machine.run(&mut net, &walk()).unwrap();
        let ids = report.collects[0].node_ids();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(r, &ids, "thread scheduling must not change results"),
        }
    }
}

// ---------------------------------------------------------------------
// Chaos suite: the same safety properties under injected faults.
//
// Acceptance: across 20+ seeded fault schedules (drops, delays,
// duplicates, corruption, one worker panic) the threaded engine must
// complete every run with logical results identical to the fault-free
// sequential engine, never falsely terminate (a short collect would
// betray it), and never hang (every run is wrapped in a hard timeout).
// ---------------------------------------------------------------------

use snap_core::{CoreError, FaultPlan, RunReport};
use std::time::Duration;

/// Runs `machine` on its own thread with a hard timeout, so an engine
/// hang fails the test instead of wedging the suite.
fn run_with_timeout(
    machine: Snap1,
    mut net: SemanticNetwork,
    program: Program,
    timeout: Duration,
) -> Result<RunReport, CoreError> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(machine.run(&mut net, &program));
    });
    rx.recv_timeout(timeout)
        .expect("engine hung: no result within the timeout")
}

/// A mixed network: chain plus skip links, so propagation has both deep
/// paths and cross-cluster merges.
fn grid(n: usize) -> SemanticNetwork {
    let mut net = chain(n);
    for i in 0..n - 7 {
        net.add_link(NodeId(i as u32), REL, 2.0, NodeId(i as u32 + 7))
            .unwrap();
    }
    net
}

/// One of 20 distinct seeded fault schedules. Seed 7 additionally
/// panics cluster 2's worker mid-propagation.
fn chaos_plan(seed: u64) -> FaultPlan {
    let base = FaultPlan::seeded(seed);
    let plan = match seed % 4 {
        0 => base.drops(0.25).duplicates(0.1),
        1 => base.delays(0.35, 3_000_000).duplicates(0.2),
        2 => base.corruptions(0.25).drops(0.1),
        _ => base
            .drops(0.15)
            .duplicates(0.15)
            .delays(0.2, 1_000_000)
            .corruptions(0.15)
            .stalls(0.1, 20_000),
    };
    if seed == 7 {
        plan.worker_panic(2, 4)
    } else {
        plan
    }
}

#[test]
fn chaos_schedules_match_fault_free_sequential_results() {
    let program = walk();
    let sequential = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Sequential)
        .build();
    let reference = sequential.run(&mut grid(50), &program).unwrap();
    // CI smoke jobs trim the sweep with e.g. CHAOS_SEEDS=5; the full
    // 20-seed envelope stays the local default. Seed 7 (the worker
    // panic) is only asserted on when the sweep reaches it.
    let seeds: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    for seed in 0..seeds {
        let plan = chaos_plan(seed);
        let machine = Snap1::builder()
            .clusters(4)
            .partition(PartitionScheme::RoundRobin)
            .engine(EngineKind::Threaded)
            .faults(plan)
            .build();
        let report = run_with_timeout(machine, grid(50), program.clone(), Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (a, b) in reference.collects.iter().zip(&report.collects) {
            assert_eq!(
                a.node_ids(),
                b.node_ids(),
                "seed {seed}: faults changed logical results"
            );
        }
        assert!(
            report.faults.total_injected() > 0,
            "seed {seed}: schedule injected nothing"
        );
        if seed == 7 {
            assert_eq!(report.faults.injected_panics, 1, "seed 7 panics a worker");
            assert_eq!(report.faults.recovered_workers, 1);
        }
    }
}

#[test]
fn delays_and_duplicates_never_false_terminate() {
    // A burst tree floods the fabric while every message is delayed or
    // duplicated: an early barrier would collect a partial frontier.
    let program = walk();
    for seed in 100..106 {
        let machine = Snap1::builder()
            .clusters(4)
            .partition(PartitionScheme::RoundRobin)
            .engine(EngineKind::Threaded)
            .faults(
                FaultPlan::seeded(seed)
                    .delays(0.5, 2_000_000)
                    .duplicates(0.4),
            )
            .build();
        let report = run_with_timeout(
            machine,
            burst_tree(12),
            program.clone(),
            Duration::from_secs(60),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            report.collects[0].len(),
            12 + 12 * 12,
            "seed {seed}: barrier completed with markers still in flight"
        );
        assert!(report.faults.injected_delays + report.faults.injected_duplicates > 0);
    }
}

#[test]
fn unreachable_cluster_is_a_typed_error_not_a_hang() {
    // Every route into cluster 3 is down: markers for it can never be
    // delivered, so the sender's retries must exhaust into a typed
    // WorkerFailed — within the timeout, not never.
    let machine = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .faults(
            FaultPlan::seeded(1)
                .link_down(0, 3)
                .link_down(1, 3)
                .link_down(2, 3),
        )
        .build();
    let err = run_with_timeout(machine, grid(50), walk(), Duration::from_secs(60))
        .expect_err("unreachable cluster must fail the run");
    match err {
        CoreError::WorkerFailed { cause, .. } => {
            assert!(cause.contains("unacknowledged"), "cause: {cause}")
        }
        other => panic!("expected WorkerFailed, got {other}"),
    }
}

#[test]
fn faulty_and_clean_threaded_reports_agree_on_work() {
    // The resilient protocol may retransmit, but the logical expansion
    // work (collects, barrier count) matches the clean run.
    let program = walk();
    let clean_machine = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .build();
    let clean = run_with_timeout(
        clean_machine,
        grid(50),
        program.clone(),
        Duration::from_secs(60),
    )
    .unwrap();
    assert!(clean.faults.is_empty(), "no plan, no faults");
    let faulty_machine = Snap1::builder()
        .clusters(4)
        .partition(PartitionScheme::RoundRobin)
        .engine(EngineKind::Threaded)
        .faults(FaultPlan::seeded(5).drops(0.3).corruptions(0.2))
        .build();
    let faulty =
        run_with_timeout(faulty_machine, grid(50), program, Duration::from_secs(60)).unwrap();
    assert_eq!(clean.barriers, faulty.barriers);
    assert_eq!(clean.collects.len(), faulty.collects.len());
    assert!(faulty.faults.retries > 0, "drops force retransmissions");
}
