//! Scaling sanity on the discrete-event machine: the qualitative
//! relations the paper's evaluation depends on must hold for the
//! simulated timings.

use snap_core::{EngineKind, MachineConfig, Snap1};
use snap_isa::{InstrClass, Program, PropRule, StepFunc};
use snap_kb::{Color, Marker, NetworkConfig, NodeId, RelationType, SemanticNetwork};

const REL: RelationType = RelationType(1);
const SRC: Color = Color(9);

/// `alpha` parallel chains of `depth` hops.
fn chains(alpha: usize, depth: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for level in 0..=depth {
        for _ in 0..alpha {
            net.add_node(if level == 0 { SRC } else { Color(0) })
                .unwrap();
        }
    }
    for level in 0..depth {
        for c in 0..alpha {
            net.add_link(
                NodeId((level * alpha + c) as u32),
                REL,
                1.0,
                NodeId(((level + 1) * alpha + c) as u32),
            )
            .unwrap();
        }
    }
    net
}

fn walk() -> Program {
    Program::builder()
        .search_color(SRC, Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Star(REL),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build()
}

/// Propagation-phase time — the paper measures speedup "during
/// propagation" (Section IV, Processor Speedup).
fn time_with(clusters: usize, mus: usize, alpha: usize) -> u64 {
    let mut net = chains(alpha, 10);
    let machine = Snap1::builder()
        .config(MachineConfig::uniform(clusters, mus))
        .build();
    machine
        .run(&mut net, &walk())
        .unwrap()
        .time_of(InstrClass::Propagate)
}

#[test]
fn more_clusters_reduce_wide_propagation_time() {
    let t1 = time_with(1, 1, 256);
    let t4 = time_with(4, 2, 256);
    let t16 = time_with(16, 3, 256);
    assert!(t4 < t1, "4 clusters beat 1: {t4} vs {t1}");
    assert!(t16 < t4, "16 clusters beat 4: {t16} vs {t4}");
    assert!(t1 as f64 / t16 as f64 > 4.0, "substantial speedup");
}

#[test]
fn wider_alpha_yields_more_speedup() {
    let speedup = |alpha: usize| time_with(1, 1, alpha) as f64 / time_with(16, 3, alpha) as f64;
    let s10 = speedup(10);
    let s100 = speedup(100);
    let s1000 = speedup(1000);
    assert!(s100 > s10, "α=100 speedup {s100:.1} > α=10 {s10:.1}");
    assert!(s1000 > s100, "α=1000 speedup {s1000:.1} > α=100 {s100:.1}");
}

#[test]
fn narrow_propagation_does_not_benefit_from_clusters() {
    // α = 1: a single serial chain cannot use the array.
    let t1 = time_with(1, 1, 1);
    let t16 = time_with(16, 3, 1);
    assert!(
        (t16 as f64) > (t1 as f64) * 0.5,
        "no magic speedup on serial work: {t1} vs {t16}"
    );
}

#[test]
fn sequential_engine_matches_des_instruction_counts() {
    let program = walk();
    let mut n1 = chains(32, 6);
    let seq = Snap1::builder()
        .clusters(1)
        .engine(EngineKind::Sequential)
        .build()
        .run(&mut n1, &program)
        .unwrap();
    let mut n2 = chains(32, 6);
    let des = Snap1::builder()
        .clusters(8)
        .engine(EngineKind::Des)
        .build()
        .run(&mut n2, &program)
        .unwrap();
    assert_eq!(seq.instruction_count(), des.instruction_count());
    assert_eq!(
        seq.count_of(InstrClass::Propagate),
        des.count_of(InstrClass::Propagate)
    );
    assert_eq!(seq.alpha_per_propagate, des.alpha_per_propagate);
}

#[test]
fn broadcast_overhead_is_constant_in_cluster_count() {
    let overhead = |clusters: usize| {
        let mut net = chains(64, 6);
        let machine = Snap1::builder()
            .config(MachineConfig::uniform(clusters, 2))
            .build();
        machine.run(&mut net, &walk()).unwrap().overhead
    };
    let o2 = overhead(2);
    let o16 = overhead(16);
    assert_eq!(o2.broadcast_ns, o16.broadcast_ns, "dedicated global bus");
    assert!(o16.sync_ns > o2.sync_ns, "barrier grows with PEs");
    assert!(
        o16.collect_ns > o2.collect_ns,
        "collect grows with clusters"
    );
}
