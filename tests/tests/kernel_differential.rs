//! Differential grid pinning the bitset wave kernel to the scalar
//! executable spec.
//!
//! The scalar loop *is* the semantics; the bitset kernel is an
//! optimisation that must be observationally indistinguishable. The
//! grid here sweeps every knowledge base × program × engine × gate
//! kind (counting-gate and the CM-2-style lockstep barrier) and runs
//! each cell twice — once per `KernelStrategy` — comparing retrievals
//! and the work counters that the kernel influences. A second sweep
//! repeats the comparison under adversarial `Fuzzed` schedules, where
//! `KernelStrategy::Auto` would fall back to scalar, so the bitset
//! kernel is forced explicitly. Finally a property test checks the
//! kernel's word-level visited tables against the hashed reference
//! map on arbitrary probe sequences.

use proptest::prelude::*;
use snap_core::propagate::VisitedMap;
use snap_core::{EngineKind, KernelStrategy, RunReport};
use snap_integration_tests::grid;
use snap_kb::NodeId;

const ENGINES: &[EngineKind] = &[
    EngineKind::Sequential,
    EngineKind::Des,
    EngineKind::Threaded,
];

/// Runs one grid cell with the given kernel strategy and gate kind.
fn run_kernel_cell(
    kb: grid::KbBuilder,
    program: &snap_isa::Program,
    clusters: usize,
    engine: EngineKind,
    kernel: KernelStrategy,
    lockstep: bool,
) -> RunReport {
    grid::run_cell_cfg(kb, program, clusters, engine, |c| {
        c.kernel = kernel;
        c.lockstep_waves = lockstep;
    })
}

/// Every cell of the grid must produce the same retrievals under the
/// scalar spec and the bitset kernel, with both gate kinds. The
/// deterministic engines (sequential, DES) must also match on the
/// kernel-sensitive work counters bit for bit; the threaded engine is
/// compared on node sets and values only, since worker interleaving
/// legitimately reorders arrival improvements.
#[test]
fn bitset_kernel_matches_scalar_across_grid_and_gates() {
    for &(kb_name, kb) in grid::KBS {
        for (prog_name, program) in grid::programs() {
            for &engine in ENGINES {
                for lockstep in [false, true] {
                    let label = format!("{kb_name}/{prog_name}/{engine:?}/lockstep={lockstep}");
                    let scalar =
                        run_kernel_cell(kb, &program, 2, engine, KernelStrategy::Scalar, lockstep);
                    let bitset =
                        run_kernel_cell(kb, &program, 2, engine, KernelStrategy::Bitset, lockstep);
                    grid::assert_equivalent(&label, &scalar.collects, &bitset.collects);
                    if engine != EngineKind::Threaded {
                        assert_eq!(
                            scalar.collects, bitset.collects,
                            "[{label}] deterministic engine drifted on exact collects"
                        );
                        assert_eq!(
                            scalar.expansions, bitset.expansions,
                            "[{label}] expansion counts diverged"
                        );
                        assert_eq!(
                            scalar.traffic.local_activations, bitset.traffic.local_activations,
                            "[{label}] local activation counts diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Under a `Fuzzed` schedule `KernelStrategy::Auto` resolves to the
/// scalar loop (the fuzzer owns task ordering), so the bitset kernel
/// is forced explicitly here and compared against the scalar run
/// under the same adversarial seed, and against the FIFO sequential
/// oracle. Any divergence is a real ordering bug in the kernel.
/// Compiled out under the planted `fuzz-bug`, which corrupts the
/// scalar side of the comparison by design.
#[cfg(not(feature = "fuzz-bug"))]
#[test]
fn bitset_kernel_matches_scalar_under_fuzzed_schedules() {
    use snap_core::ScheduleStrategy;
    for (prog_name, program) in grid::programs() {
        let oracle = run_kernel_cell(
            grid::kb_web,
            &program,
            5,
            EngineKind::Sequential,
            KernelStrategy::Scalar,
            false,
        );
        for &engine in ENGINES {
            for seed in [0x5EED_0001_u64, 0xDEAD_BEEF] {
                let label = format!("web/{prog_name}/{engine:?}/seed={seed:#x}");
                let run = |kernel| {
                    grid::run_cell_cfg(grid::kb_web, &program, 5, engine, |c| {
                        c.kernel = kernel;
                        c.schedule = ScheduleStrategy::Fuzzed {
                            seed,
                            limit: u64::MAX,
                        };
                    })
                };
                let scalar = run(KernelStrategy::Scalar);
                let bitset = run(KernelStrategy::Bitset);
                grid::assert_equivalent(&label, &scalar.collects, &bitset.collects);
                grid::assert_equivalent(
                    &format!("{label} vs oracle"),
                    &oracle.collects,
                    &bitset.collects,
                );
            }
        }
    }
}

proptest! {
    /// The word-level visited tables behind the bitset kernel must make
    /// the same expand/suppress decision as the hashed reference map on
    /// every probe, including nodes past the declared arena size (the
    /// growth path) and exact value ties (the origin tie-break).
    #[test]
    fn bitset_visited_agrees_with_hashed_reference(
        probes in proptest::collection::vec(
            (0usize..2, 0u8..8, 0u32..96, 0u32..40, 0u32..16),
            1..200,
        ),
    ) {
        let mut bitset = VisitedMap::bitset(64);
        let mut hashed = VisitedMap::new();
        for (prop, state, node, quantum, origin) in probes {
            // Coarse quantisation forces exact value ties so the
            // origin tie-break is exercised, not just improvements.
            let value = quantum as f32 * 0.25;
            let b = bitset.should_expand(prop, state, NodeId(node), value, NodeId(origin));
            let h = hashed.should_expand(prop, state, NodeId(node), value, NodeId(origin));
            prop_assert_eq!(
                b, h,
                "probe (prop={}, state={}, node={}, value={}, origin={}) diverged",
                prop, state, node, value, origin
            );
        }
        prop_assert_eq!(bitset.len(), hashed.len());
        prop_assert_eq!(bitset.is_empty(), hashed.is_empty());
    }
}
