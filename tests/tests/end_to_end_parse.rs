//! End-to-end NLU parsing across engines and machine geometries: the
//! linguistic results must not depend on how the array is configured.

use snap_core::{EngineKind, Snap1};
use snap_kb::{NodeId, PartitionScheme};
use snap_nlu::{DomainSpec, MemoryBasedParser, SentenceGenerator};

fn parse_winners(
    engine: EngineKind,
    clusters: usize,
    scheme: PartitionScheme,
) -> Vec<Vec<(NodeId, f32)>> {
    let mut kb = DomainSpec::sized(1_500).build().unwrap();
    let parser = MemoryBasedParser::new(&kb);
    let kb_ro = kb.clone();
    let mut generator = SentenceGenerator::new(&kb_ro, 77);
    let machine = Snap1::builder()
        .clusters(clusters)
        .partition(scheme)
        .engine(engine)
        .build();
    let mut winners = Vec::new();
    for len in [9, 18] {
        let sentence = generator.generate(len);
        let result = parser.parse(&mut kb.network, &machine, &sentence).unwrap();
        for clause in result.clauses {
            winners.push(clause.winners);
        }
    }
    winners
}

#[test]
fn winners_are_engine_independent() {
    let reference = parse_winners(EngineKind::Sequential, 1, PartitionScheme::Sequential);
    assert!(!reference.is_empty());
    for engine in [EngineKind::Des, EngineKind::Threaded] {
        let got = parse_winners(engine, 4, PartitionScheme::RoundRobin);
        assert_eq!(reference.len(), got.len(), "{engine:?}");
        for (a, b) in reference.iter().zip(&got) {
            let ids_a: Vec<NodeId> = a.iter().map(|w| w.0).collect();
            let ids_b: Vec<NodeId> = b.iter().map(|w| w.0).collect();
            assert_eq!(ids_a, ids_b, "{engine:?} winner sets differ");
            for ((_, ca), (_, cb)) in a.iter().zip(b) {
                assert!((ca - cb).abs() < 1e-3, "{engine:?} costs differ");
            }
        }
    }
}

#[test]
fn winners_are_geometry_independent() {
    let reference = parse_winners(EngineKind::Des, 1, PartitionScheme::Sequential);
    for clusters in [2, 8, 16] {
        for scheme in [
            PartitionScheme::Sequential,
            PartitionScheme::RoundRobin,
            PartitionScheme::Semantic,
        ] {
            let got = parse_winners(EngineKind::Des, clusters, scheme);
            assert_eq!(
                reference.len(),
                got.len(),
                "{clusters} clusters / {scheme:?}"
            );
            for (a, b) in reference.iter().zip(&got) {
                let ids_a: Vec<NodeId> = a.iter().map(|w| w.0).collect();
                let ids_b: Vec<NodeId> = b.iter().map(|w| w.0).collect();
                assert_eq!(ids_a, ids_b, "{clusters} clusters / {scheme:?}");
            }
        }
    }
}

#[test]
fn every_generated_clause_accepts_its_target() {
    let mut kb = DomainSpec::sized(2_500).build().unwrap();
    let parser = MemoryBasedParser::new(&kb);
    let kb_ro = kb.clone();
    let mut generator = SentenceGenerator::new(&kb_ro, 123);
    let machine = Snap1::builder().clusters(8).build();
    for trial in 0..5 {
        let sentence = generator.generate(9);
        let target = kb_ro.sequences[sentence.target_sequences[0]].root;
        let result = parser.parse(&mut kb.network, &machine, &sentence).unwrap();
        let winners: Vec<NodeId> = result.clauses[0].winners.iter().map(|w| w.0).collect();
        assert!(
            winners.contains(&target),
            "trial {trial}: target {target} missing from {winners:?} \
             for \"{}\"",
            sentence.text()
        );
    }
}
