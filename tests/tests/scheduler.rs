//! The β scheduler must preserve program semantics exactly, and must
//! actually recover overlap the discrete-event machine can use.

use proptest::prelude::*;
use snap_core::{EngineKind, Snap1};
use snap_isa::{analyze_beta, schedule_beta, CombineFunc, InstrClass, Program, PropRule, StepFunc};
use snap_kb::{Color, Marker, NetworkConfig, NodeId, RelationType, SemanticNetwork};

fn mesh(nodes: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for i in 0..nodes {
        net.add_node(Color((i % 6) as u8)).unwrap();
    }
    for i in 0..nodes {
        let a = NodeId(i as u32);
        let b = NodeId(((i * 7 + 3) % nodes) as u32);
        let c = NodeId(((i * 5 + 11) % nodes) as u32);
        net.add_link(a, RelationType(1), 0.5, b).unwrap();
        net.add_link(a, RelationType(2), 1.0, c).unwrap();
    }
    net
}

/// An interleaved program: independent propagations separated by
/// unrelated set/clear work, as a straightforwardly written application
/// would issue them.
fn interleaved(k: usize) -> Program {
    let mut b = Program::builder();
    for i in 0..k {
        b = b.search_color(Color((i % 6) as u8), Marker::binary(i as u8), 0.0);
    }
    for i in 0..k {
        b = b
            .propagate(
                Marker::binary(i as u8),
                Marker::complex(i as u8),
                PropRule::Star(RelationType(1 + (i % 2) as u16)),
                StepFunc::AddWeight,
            )
            // Unrelated housekeeping between the propagates.
            .set_marker(Marker::binary((40 + i) as u8), 0.0)
            .clear_marker(Marker::binary((40 + i) as u8));
    }
    for i in 0..k {
        b = b.collect_marker(Marker::complex(i as u8));
    }
    b.build()
}

#[test]
fn scheduling_recovers_beta() {
    let p = interleaved(6);
    assert_eq!(
        analyze_beta(&p).beta_max(),
        6,
        "dependency-wise independent"
    );
    let s = schedule_beta(&p);
    // After scheduling, the six propagations are adjacent.
    let classes: Vec<InstrClass> = s.iter().map(|i| i.class()).collect();
    let first_prop = classes
        .iter()
        .position(|&c| c == InstrClass::Propagate)
        .unwrap();
    assert!(classes[first_prop..first_prop + 6]
        .iter()
        .all(|&c| c == InstrClass::Propagate));
}

#[test]
fn scheduled_program_is_faster_on_the_machine() {
    let p = interleaved(8);
    let s = schedule_beta(&p);
    let machine = Snap1::new();
    let mut n1 = mesh(400);
    let t_plain = machine.run(&mut n1, &p).unwrap();
    let mut n2 = mesh(400);
    let t_sched = machine.run(&mut n2, &s).unwrap();
    assert_eq!(t_plain.collects, t_sched.collects, "same results");
    assert!(
        t_sched.time_of(InstrClass::Propagate) < t_plain.time_of(InstrClass::Propagate),
        "overlap shortens the propagation phases: {} vs {}",
        t_sched.time_of(InstrClass::Propagate),
        t_plain.time_of(InstrClass::Propagate)
    );
    assert!(t_sched.barriers < t_plain.barriers, "fewer barrier rounds");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random mixes of propagates, boolean/set-clear ops, and collects:
    /// the scheduled program must produce identical results on the
    /// sequential reference engine.
    #[test]
    fn prop_scheduling_preserves_semantics(
        ops in proptest::collection::vec((0u8..6, 0u8..6, 0u8..6, 0u8..3), 1..24),
    ) {
        let mut b = Program::builder();
        for (i, &(x, y, z, kind)) in ops.iter().enumerate() {
            b = match kind {
                0 => b.propagate(
                    Marker::complex(x),
                    Marker::complex(y),
                    PropRule::Star(RelationType(1 + (i % 2) as u16)),
                    StepFunc::AddWeight,
                ),
                1 => b.or_marker(
                    Marker::complex(x),
                    Marker::complex(y),
                    Marker::complex(z),
                    CombineFunc::Min,
                ),
                _ => b.search_color(Color(x % 6), Marker::complex(y), 0.0),
            };
        }
        for m in 0..6 {
            b = b.collect_marker(Marker::complex(m));
        }
        let p = b.build();
        let s = schedule_beta(&p);
        prop_assert_eq!(p.len(), s.len());

        let machine = Snap1::builder().clusters(1).engine(EngineKind::Sequential).build();
        let mut n1 = mesh(120);
        let r_plain = machine.run(&mut n1, &p).unwrap();
        let mut n2 = mesh(120);
        let r_sched = machine.run(&mut n2, &s).unwrap();
        prop_assert_eq!(r_plain.collects.len(), r_sched.collects.len());
        for (a, b) in r_plain.collects.iter().zip(&r_sched.collects) {
            prop_assert_eq!(a.node_ids(), b.node_ids());
        }
    }
}
