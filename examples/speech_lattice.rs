//! Speech-style processing (the PASS analogue): a word lattice with
//! several competing hypotheses per time slot is resolved by overlapped
//! marker propagation — the workload with the paper's highest
//! inter-propagation (β) parallelism.
//!
//! ```sh
//! cargo run --release --example speech_lattice
//! ```

use snap_bench::workloads::speech_program;
use snap_core::Snap1;
use snap_isa::analyze_beta;
use snap_nlu::DomainSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kb = DomainSpec::sized(6_000).build()?;
    // Five time slots with 3–6 competing word hypotheses each.
    let slots = [3usize, 5, 6, 4, 3];
    let program = speech_program(&kb, &slots);

    let stats = analyze_beta(&program);
    println!(
        "lattice: {:?} hypotheses per slot → program of {} instructions",
        slots,
        program.len()
    );
    println!(
        "β-parallelism: min {}, max {}, avg {:.2} (paper reports PASS at 2.8–6)",
        stats.beta_min(),
        stats.beta_max(),
        stats.beta_avg()
    );

    let machine = Snap1::new();
    let report = machine.run(&mut kb.network, &program)?;
    println!(
        "executed in {:.2} ms simulated time; {} inter-cluster messages, mean {:.1} per sync",
        report.total_ns as f64 / 1e6,
        report.traffic.total_messages,
        report.traffic.mean_messages_per_sync()
    );
    println!(
        "{} concepts satisfied every slot's constraints",
        report.collects[0].len()
    );
    Ok(())
}
