//! Chaos: natural-language parsing under an adversarial fault schedule.
//!
//! Builds a compact NLU knowledge base, parses the same sentences twice
//! on the threaded engine — once fault-free, once under a seeded
//! [`FaultPlan`] that drops, duplicates, delays, and corrupts marker
//! messages and panics one cluster's worker thread mid-propagation —
//! and shows that the resilient protocol (checksummed envelopes,
//! ack/retry, barrier watchdog, region adoption) delivers *identical*
//! logical results, then prints the [`FaultReport`] of what it survived.
//!
//! The schedule is deterministic: the same seed and plan reproduce the
//! same injected faults on every run.
//!
//! ```sh
//! cargo run --release --example chaos
//! ```
//!
//! With the `obs` feature the chaos run is also traced, and a
//! Perfetto-loadable chrome trace with one track per cluster lands in
//! `results/chaos_trace.json`:
//!
//! ```sh
//! cargo run --release --features obs --example chaos
//! ```

use snap_core::{EngineKind, FaultPlan, Snap1};
use snap_kb::PartitionScheme;
use snap_nlu::{DomainSpec, MemoryBasedParser, SentenceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected worker panics are caught and recovered by the engine;
    // a quiet hook keeps their backtraces out of the demo output.
    std::panic::set_hook(Box::new(|info| {
        eprintln!(
            "  [worker panicked: {}]",
            info.payload_as_str().unwrap_or("?")
        );
    }));

    println!("building a 3K-node NLU knowledge base...");
    let kb = DomainSpec::sized(3_000).build()?;
    let parser = MemoryBasedParser::new(&kb);
    let mut generator = SentenceGenerator::new(&kb, 1991);
    let sentences: Vec<_> = (0..3).map(|_| generator.generate(6)).collect();

    let builder = || {
        Snap1::builder()
            .clusters(8)
            .partition(PartitionScheme::RoundRobin)
            .engine(EngineKind::Threaded)
    };

    // Reference: fault-free threaded parse.
    let clean_machine = builder().build();
    let mut clean_net = kb.network.clone();
    let mut clean_results = Vec::new();
    for s in &sentences {
        clean_results.push(parser.parse(&mut clean_net, &clean_machine, s)?);
    }

    // The adversary: every fault class at once, plus a worker panic.
    let plan = FaultPlan::seeded(0x5AFE)
        .drops(0.15)
        .duplicates(0.10)
        .delays(0.20, 1_000_000) // up to 1 ms extra in-flight latency
        .corruptions(0.10)
        .stalls(0.05, 50_000)
        .worker_panic(3, 40);
    println!("\ninjecting: {plan:?}\n");
    // Full event tracing on the chaotic run; without the `obs` cargo
    // feature recording is compiled out and this costs nothing.
    let chaos_machine = builder()
        .faults(plan)
        .trace(snap_core::ObsConfig::full())
        .build();
    let mut chaos_net = kb.network.clone();

    let mut survived = snap_core::FaultReport::default();
    let mut last_trace = snap_core::TraceReport::default();
    for (i, s) in sentences.iter().enumerate() {
        let clean = &clean_results[i];
        let chaotic = parser.parse(&mut chaos_net, &chaos_machine, s)?;
        // Identical logical results, clause by clause.
        for (c, (a, b)) in clean.clauses.iter().zip(&chaotic.clauses).enumerate() {
            assert_eq!(
                a.winners,
                b.winners,
                "S{} clause {}: faults changed the interpretation",
                i + 1,
                c + 1
            );
        }
        let winner = chaotic
            .clauses
            .first()
            .and_then(|c| c.winners.first())
            .and_then(|&(root, _)| kb.network.name(root));
        println!(
            "S{}: \"{}\" -> {} (same as fault-free)",
            i + 1,
            s.text(),
            winner.unwrap_or("<no interpretation>")
        );
        survived = survived.merged(&chaotic.report.faults);
        last_trace = chaotic.report.trace;
    }

    println!("\nevery parse matched the fault-free run. survived:");
    println!("{survived}");
    assert!(
        survived.total_injected() > 0,
        "the schedule injected faults"
    );

    // Traced builds: dump the last parse's events as a chrome trace
    // (one track per cluster) and print the compact phase summary.
    if !last_trace.is_empty() {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join("chaos_trace.json");
        std::fs::write(&path, snap_core::chrome_trace_json(&last_trace))?;
        println!("\n{}", last_trace.summary());
        println!(
            "perfetto trace written to {} — open it at https://ui.perfetto.dev",
            path.display()
        );
    }
    Ok(())
}
