//! Property inheritance, SNAP-1 vs the CM-2 baseline (the comparison of
//! Fig. 15): mark a property at the root of a concept hierarchy,
//! propagate it to every leaf, and compare execution characteristics of
//! the MIMD machine against the lockstep SIMD comparator.
//!
//! ```sh
//! cargo run --release --example inheritance
//! ```

use snap_baseline::Cm2;
use snap_core::Snap1;
use snap_nlu::{hierarchy, inheritance_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snap = Snap1::new();
    let cm2 = Cm2::new();

    println!("root-to-leaf inheritance, branching-4 hierarchies:\n");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>10}",
        "nodes", "depth", "SNAP-1 ms", "CM-2 ms", "CM-2/SNAP"
    );
    for nodes in [100, 400, 1_600, 6_400] {
        let workload = hierarchy(nodes, 4)?;
        let program = inheritance_program(workload.root);

        let mut net_snap = workload.network.clone();
        let snap_report = snap.run(&mut net_snap, &program)?;
        let mut net_cm2 = workload.network.clone();
        let cm2_report = cm2.run(&mut net_cm2, &program)?;

        // Both machines agree on which leaves inherited the property.
        assert_eq!(snap_report.collects, cm2_report.collects);
        assert_eq!(snap_report.collects[0].node_ids(), workload.leaves);

        println!(
            "{:>8} {:>7} {:>12.3} {:>12.3} {:>9.1}x",
            nodes,
            workload.depth,
            snap_report.total_ns as f64 / 1e6,
            cm2_report.total_ns as f64 / 1e6,
            cm2_report.total_ns as f64 / snap_report.total_ns as f64,
        );
    }
    println!(
        "\nSNAP-1's MIMD array avoids the CM-2's per-wave controller round-trip, \
         but its time grows faster with knowledge-base size — the paper predicts \
         the lines cross for much larger knowledge bases."
    );
    Ok(())
}
