//! Quickstart: build the paper's Fig. 1 miniature knowledge base, run
//! the Fig. 5 marker-propagation program, and read back the accepted
//! concept sequence.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use snap_core::Snap1;
use snap_isa::{assemble, disassemble, SymbolTable};
use snap_kb::{Color, NetworkConfig, RelationType, SemanticNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Colors distinguish concept types; relations carry weights used as
    // costs during propagation.
    let np = Color(1);
    let vp = Color(2);
    let concept_seq = Color(3);
    let is_a = RelationType(0);
    let first = RelationType(1);
    let last = RelationType(2);

    // The Fig. 1 fragment: lexical words under syntactic categories and
    // a "seeing-event" concept sequence with first/last elements.
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let we = net.add_named_node("we", np)?;
    let ship = net.add_named_node("ship", np)?;
    let see = net.add_named_node("see", vp)?;
    let noun_phrase = net.add_named_node("noun-phrase", np)?;
    let verb_phrase = net.add_named_node("verb-phrase", vp)?;
    let seeing_event = net.add_named_node("seeing-event", concept_seq)?;
    net.add_link(we, is_a, 0.1, noun_phrase)?;
    net.add_link(ship, is_a, 0.2, noun_phrase)?;
    net.add_link(see, is_a, 0.1, verb_phrase)?;
    net.add_link(noun_phrase, first, 0.5, seeing_event)?;
    net.add_link(verb_phrase, last, 0.5, seeing_event)?;

    // Programs can be written in the Fig. 5 assembly dialect.
    let mut symbols = SymbolTable::new();
    symbols
        .relation("is-a", is_a)
        .relation("first", first)
        .relation("last", last)
        .color("NP", np)
        .color("VP", vp);
    let program = assemble(
        "\
; configuration phase (L1..L3)
search-color NP m1 0.0
search-color VP m2 0.0
; propagation phase (L4, L5) — these two overlap (beta-parallelism)
propagate m2 m3 spread(is-a,last) add-weight
propagate m1 m4 spread(is-a,first) add-weight
; accumulation phase (L6, L7)
and-marker m3 m4 m5 add
collect-marker m5
",
        &symbols,
    )?;
    println!("program:\n{}", disassemble(&program, &symbols));

    // Run on the paper's evaluation machine: 16 clusters, 72 PEs.
    let machine = Snap1::new();
    let report = machine.run(&mut net, &program)?;

    let snap_core::CollectOutput::Nodes(nodes) = &report.collects[0] else {
        unreachable!("collect-marker returns nodes");
    };
    println!("accepted concept sequences:");
    for (node, value) in nodes {
        println!(
            "  {} (cost {:.2})",
            net.name(*node).unwrap_or("<anonymous>"),
            value.map_or(0.0, |v| v.value)
        );
    }
    println!(
        "simulated time: {:.1} µs over {} instructions ({} barriers)",
        report.total_ns as f64 / 1e3,
        report.instruction_count(),
        report.barriers
    );
    assert_eq!(nodes.len(), 1, "exactly one sequence accepted");
    Ok(())
}
