//! Examples package: see the example binaries (`quickstart`, `nlu_parse`, `inheritance`, `speech_lattice`).
