//! Natural-language understanding on the MUC-4-like domain: generate a
//! 12K-node terrorism knowledge base, parse newswire-style sentences
//! with the phrasal + memory-based parsers, and print the accepted
//! event interpretations — the paper's headline application (Tables
//! III/IV).
//!
//! ```sh
//! cargo run --release --example nlu_parse
//! ```

use snap_core::Snap1;
use snap_nlu::{answer_template, DomainSpec, MemoryBasedParser, SentenceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the 12K-node 'terrorism in Latin America' analogue...");
    let mut kb = DomainSpec::muc4().build()?;
    println!(
        "knowledge base: {} nodes, {} links, {} concept sequences",
        kb.network.node_count(),
        kb.network.link_count(),
        kb.sequences.len()
    );

    let machine = Snap1::new(); // 16 clusters / 72 PEs
    let parser = MemoryBasedParser::new(&kb);
    let kb_ro = kb.clone();
    let mut generator = SentenceGenerator::new(&kb_ro, 1991);

    for (i, sentence) in generator.evaluation_set().into_iter().enumerate() {
        println!("\nS{}: \"{}\"", i + 1, sentence.text());
        let result = parser.parse(&mut kb.network, &machine, &sentence)?;
        println!(
            "  P.P. {:.2} ms + M.B. {:.2} ms = {:.2} ms ({} instructions, max path {})",
            result.pp_time_ns as f64 / 1e6,
            result.mb_time_ns as f64 / 1e6,
            result.total_ns() as f64 / 1e6,
            result.report.instruction_count(),
            result.report.max_propagation_depth,
        );
        for (c, clause) in result.clauses.iter().enumerate() {
            match clause.winners.first() {
                Some(&(root, cost)) => println!(
                    "  clause {}: {} (cost {:.2}, {} candidate(s))",
                    c + 1,
                    kb.network.name(root).unwrap_or("<anonymous>"),
                    cost,
                    clause.winners.len()
                ),
                None => println!("  clause {}: no interpretation survived", c + 1),
            }
            if let Some(template) = &result.templates[c] {
                let filled: usize = template.roles.iter().map(|r| r.fillers.len()).sum();
                println!(
                    "    template: {} roles, {} candidate fillers",
                    template.roles.len(),
                    filled
                );
            }
        }
        assert!(
            result.total_ns() < 1_000_000_000,
            "real-time requirement violated"
        );
    }
    println!("\nall sentences parsed in real time (< 1 s simulated)");

    // Information extraction: ask who/what filled the roles of the last
    // accepted event, restricted to the concepts the sentence mentioned.
    let mut generator = SentenceGenerator::new(&kb_ro, 2026);
    let sentence = generator.generate(9);
    let result = parser.parse(&mut kb.network, &machine, &sentence)?;
    if let Some(template) = result.templates.first().and_then(|t| t.as_ref()) {
        let mentioned: Vec<_> = sentence
            .words
            .iter()
            .filter_map(|w| kb_ro.word(w))
            .collect();
        let answers = answer_template(&mut kb.network, &machine, template, &mentioned)?;
        println!("\nrole answers for \"{}\":", sentence.text());
        for (i, role) in answers.iter().enumerate() {
            let names: Vec<&str> = role
                .answers
                .iter()
                .filter_map(|(n, _)| kb.network.name(*n))
                .collect();
            println!("  role {}: {:?}", i, names);
        }
    }
    Ok(())
}
